//! The lint catalog: repo-specific rules over the token stream.
//!
//! Each rule has a stable id (`L001`…), fires with a `file:line:col`
//! anchor, and suggests the canonical idiom. The cross-file `L005` check
//! lives in [`crate::parity`]; the manifest check `L006` in
//! [`crate::manifest`]; the cross-file `L008` check in
//! [`crate::batched`]; this module holds the per-file token rules.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// One catalog entry: id, short slug, what it enforces.
pub struct LintInfo {
    /// Stable id (`L001`…).
    pub id: &'static str,
    /// Kebab-case slug used in docs and `--list`.
    pub slug: &'static str,
    /// One-line rule statement.
    pub rule: &'static str,
}

/// The full catalog (including `L000`, the meta-lint for malformed
/// suppressions). Mirrored in ARCHITECTURE.md's "Determinism contract,
/// enforced" table.
pub const CATALOG: &[LintInfo] = &[
    LintInfo {
        id: "L000",
        slug: "bad-suppression",
        rule: "every `lint: allow(...)` must name known ids and carry a reason",
    },
    LintInfo {
        id: "L001",
        slug: "nondet-collection",
        rule: "no default-hasher HashMap/HashSet in deterministic crates",
    },
    LintInfo {
        id: "L002",
        slug: "wall-clock-in-sim",
        rule: "no Instant::now/SystemTime outside the real-time crates",
    },
    LintInfo {
        id: "L003",
        slug: "unseeded-randomness",
        rule: "every RNG derives from SimRng/seed plumbing, never ambient entropy",
    },
    LintInfo {
        id: "L004",
        slug: "lock-poison",
        rule: "lock()/read()/write() must recover poison via PoisonError::into_inner, not unwrap",
    },
    LintInfo {
        id: "L005",
        slug: "registry-parity",
        rule: "pcc_scenarios::install_registry and pcc_udp::install_registry register the same set",
    },
    LintInfo {
        id: "L006",
        slug: "dep-free",
        rule: "every Cargo.toml dependency is an in-workspace path dep (no-network build)",
    },
    LintInfo {
        id: "L007",
        slug: "float-total-order",
        rule: "no partial_cmp(..).unwrap()/expect() on floats; use total_cmp",
    },
    LintInfo {
        id: "L008",
        slug: "batched-conformance",
        rule: "every registered algorithm is in the batched conformance list or carries a reasoned allow",
    },
    LintInfo {
        id: "L009",
        slug: "unbudgeted-retry",
        rule: "real-datapath files declaring LossKind::Timeout must carry backoff/dead-time budget state",
    },
];

/// Is `id` a catalog id (valid in an `allow(...)`)? `L000` itself is not
/// suppressible — a broken suppression cannot excuse itself.
pub fn is_known_id(id: &str) -> bool {
    id != "L000" && CATALOG.iter().any(|l| l.id == id)
}

/// All suppressible ids, for error messages.
pub fn known_ids() -> Vec<&'static str> {
    CATALOG
        .iter()
        .map(|l| l.id)
        .filter(|i| *i != "L000")
        .collect()
}

/// Per-file enforcement policy, derived from which crate a file belongs
/// to (see [`crate::REAL_TIME_CRATES`]).
#[derive(Clone, Debug, Default)]
pub struct Policy {
    /// Crate the file belongs to (diagnostic messages name it).
    pub crate_name: String,
    /// Skip L001/L002: the crate's job is real sockets or wall-clock
    /// benchmarking, so its outputs are outside the determinism contract.
    pub real_time: bool,
    /// Enforce L009: the crate drives real sockets, where a retry loop
    /// re-armed after a whole-window timeout with no backoff/budget state
    /// in reach hammers a dead peer forever (the simulator's horizon
    /// bounds every sim run, so only real datapaths need the gate).
    pub retry_budget: bool,
}

/// RNG constructors/types that pull ambient entropy. Any of these
/// appearing as a code identifier is an L003 hit — the workspace's only
/// sanctioned randomness is `SimRng` seeded through the scenario/seed
/// plumbing (and `SimRng::derive` for substreams).
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "from_rng",
    "OsRng",
    "getrandom",
    "RandomState",
];

/// Idents that witness budget/backoff machinery for L009: a file that
/// classifies losses as timeouts is exempt as soon as it also touches any
/// of the retry-bounding state the engine/datapath ship.
const BUDGET_IDENTS: &[&str] = &[
    "rto_backoff",
    "dead_time_budget",
    "timeouts_since_progress",
    "Stalled",
];

/// Run every per-file token rule over `toks` (comments included; rules
/// skip them). Suppressions are applied by the caller.
pub fn run(path: &str, toks: &[Tok], policy: &Policy) -> Vec<Diagnostic> {
    // Comments out: rules see pure code tokens.
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    // L009 witness scan: does this file reference any retry-bounding
    // state at all?
    let has_budget_state = code
        .iter()
        .any(|t| t.kind == TokKind::Ident && BUDGET_IDENTS.contains(&t.text.as_str()));
    let mut diags = Vec::new();
    let mut push = |id: &'static str, t: &Tok, message: String, help: Option<String>| {
        diags.push(Diagnostic {
            id,
            path: path.to_string(),
            line: t.line,
            col: t.col,
            message,
            help,
        });
    };

    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // L001 nondet-collection.
        if !policy.real_time && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                "L001",
                t,
                format!(
                    "default-hasher `{}` in deterministic crate `{}`: iteration order is \
                     per-process random and can leak into output",
                    t.text, policy.crate_name
                ),
                Some(format!(
                    "use `BTree{}` or an index-keyed Vec; if order provably never escapes, \
                     suppress with a written determinism argument",
                    &t.text[4..]
                )),
            );
        }
        // L002 wall-clock-in-sim.
        if !policy.real_time {
            if t.text == "Instant" && path_call(&code, i, "now") {
                push(
                    "L002",
                    t,
                    format!(
                        "`Instant::now()` in deterministic crate `{}`: simulated results \
                         must come from SimTime, never the wall clock",
                        policy.crate_name
                    ),
                    Some("thread `SimTime`/`ctx.now` through instead".to_string()),
                );
            }
            if t.text == "SystemTime" {
                push(
                    "L002",
                    t,
                    format!(
                        "`SystemTime` in deterministic crate `{}`: wall-clock reads make \
                         runs unreproducible",
                        policy.crate_name
                    ),
                    Some("thread `SimTime`/`ctx.now` through instead".to_string()),
                );
            }
        }
        // L003 unseeded-randomness.
        if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            push(
                "L003",
                t,
                format!(
                    "`{}` draws ambient entropy: every RNG must be constructed from \
                     `SimRng` / the seed plumbing so runs are per-seed reproducible",
                    t.text
                ),
                Some("derive a stream with `SimRng::new(seed)` / `rng.derive(tag)`".to_string()),
            );
        }
        // L004 lock-poison: `.lock().unwrap()` / `.read().expect(..)` etc.
        if matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
            && code.get(i + 2).is_some_and(|p| p.is_punct(')'))
            && code.get(i + 3).is_some_and(|p| p.is_punct('.'))
            && code
                .get(i + 4)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
        {
            push(
                "L004",
                t,
                format!(
                    "`.{}().{}(..)` panics forever after one poisoning panic elsewhere",
                    t.text,
                    code[i + 4].text
                ),
                Some(
                    "recover with `.unwrap_or_else(std::sync::PoisonError::into_inner)` \
                     (the registry.rs idiom)"
                        .to_string(),
                ),
            );
        }
        // L009 unbudgeted-retry: a real-datapath file that declares
        // whole-window timeouts (`LossKind::Timeout`) re-arms its retry
        // loop on them — that loop must live beside backoff/budget state
        // (any of BUDGET_IDENTS), or a dead peer is retried forever.
        if policy.retry_budget
            && t.text == "LossKind"
            && path_call(&code, i, "Timeout")
            && !has_budget_state
        {
            push(
                "L009",
                t,
                format!(
                    "`LossKind::Timeout` in real-datapath crate `{}` with no backoff or \
                     dead-time budget state in this file: the retry loop it re-arms can \
                     hammer a dead peer forever",
                    policy.crate_name
                ),
                Some(
                    "bound the retries with `rto_backoff`/`dead_time_budget` (the udp sender \
                     idiom), or suppress with a written liveness argument"
                        .to_string(),
                ),
            );
        }
        // L007 float-total-order: `.partial_cmp(...).unwrap()/.expect(...)`.
        if t.text == "partial_cmp"
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            if let Some(close) = matching_paren(&code, i + 1) {
                if code.get(close + 1).is_some_and(|p| p.is_punct('.'))
                    && code
                        .get(close + 2)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                {
                    push(
                        "L007",
                        t,
                        format!(
                            "`.partial_cmp(..).{}(..)` panics on NaN mid-sort",
                            code[close + 2].text
                        ),
                        Some("use `f64::total_cmp` in comparators".to_string()),
                    );
                }
            }
        }
    }
    diags
}

/// Does `code[i]` start a `X::name` path call, i.e. is it followed by
/// `::` and the identifier `name`?
fn path_call(code: &[&Tok], i: usize, name: &str) -> bool {
    code.get(i + 1).is_some_and(|p| p.is_punct(':'))
        && code.get(i + 2).is_some_and(|p| p.is_punct(':'))
        && code.get(i + 3).is_some_and(|n| n.is_ident(name))
}

/// Index of the `)` matching the `(` at `open` (None if unbalanced).
fn matching_paren(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn det_policy() -> Policy {
        Policy {
            crate_name: "pcc-test".to_string(),
            real_time: false,
            retry_budget: false,
        }
    }

    fn ids(src: &str, policy: &Policy) -> Vec<&'static str> {
        run("t.rs", &lex(src), policy)
            .into_iter()
            .map(|d| d.id)
            .collect()
    }

    #[test]
    fn l001_fires_on_idents_not_strings() {
        let p = det_policy();
        assert_eq!(ids("use std::collections::HashMap;", &p), vec!["L001"]);
        assert_eq!(
            ids("let s = \"HashMap\"; // HashSet", &p),
            Vec::<&str>::new()
        );
        assert!(ids(
            "x",
            &Policy {
                real_time: true,
                ..det_policy()
            }
        )
        .is_empty());
    }

    #[test]
    fn l002_needs_the_now_call_path() {
        let p = det_policy();
        assert_eq!(ids("let t = Instant::now();", &p), vec!["L002"]);
        // Storing/naming the type is fine; only the wall-clock read trips.
        assert!(ids("use std::time::Instant;", &p).is_empty());
        assert_eq!(ids("SystemTime::UNIX_EPOCH", &p), vec!["L002"]);
    }

    #[test]
    fn l004_matches_unwrap_and_expect_across_lines() {
        let p = det_policy();
        assert_eq!(ids("m.lock().unwrap();", &p), vec!["L004"]);
        assert_eq!(
            ids("t\n  .read()\n  .expect(\"poisoned\")", &p),
            vec!["L004"]
        );
        // The canonical idiom does not fire.
        assert!(ids("m.lock().unwrap_or_else(PoisonError::into_inner)", &p).is_empty());
        // A read with arguments is io::Read, not a lock.
        assert!(ids("f.read(&mut buf).unwrap()", &p).is_empty());
    }

    #[test]
    fn l007_spans_the_argument_list() {
        let p = det_policy();
        assert_eq!(
            ids("v.sort_by(|a, b| a.partial_cmp(b).unwrap());", &p),
            vec!["L007"]
        );
        assert_eq!(
            ids("a.partial_cmp(&f(x, y)).expect(\"no NaN\")", &p),
            vec!["L007"]
        );
        assert!(ids("a.partial_cmp(b)", &p).is_empty());
        // Defining PartialOrd is fine.
        assert!(ids(
            "fn partial_cmp(&self, o: &Self) -> Option<Ordering> { }",
            &p
        )
        .is_empty());
    }

    #[test]
    fn l009_needs_budget_state_in_reach() {
        let p = Policy {
            retry_budget: true,
            ..det_policy()
        };
        // Declaring a timeout with no bounding state in the file fires.
        assert_eq!(ids("let k = LossKind::Timeout;", &p), vec!["L009"]);
        // Any budget/backoff witness in the same file is the exemption.
        assert!(ids("let k = LossKind::Timeout; rto_backoff += 1;", &p).is_empty());
        assert!(ids("emit(LossKind::Timeout, cfg.dead_time_budget)", &p).is_empty());
        // Other loss kinds never fire, and sim-side crates are exempt.
        assert!(ids("let k = LossKind::Detected;", &p).is_empty());
        assert!(ids("let k = LossKind::Timeout;", &det_policy()).is_empty());
    }

    #[test]
    fn l003_entropy_sources() {
        let p = det_policy();
        assert_eq!(ids("let mut r = thread_rng();", &p), vec!["L003"]);
        assert_eq!(
            ids("HashMap::with_hasher(RandomState::new())", &p),
            vec!["L001", "L003"]
        );
        assert!(ids("let r = SimRng::new(seed).derive(7);", &p).is_empty());
    }
}
