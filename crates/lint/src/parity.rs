//! L005 registry-parity: the cross-file semantic check.
//!
//! The simulator side (`pcc_scenarios::install_registry`) and the
//! real-socket side (`pcc_udp::install_registry`) must assemble the same
//! algorithm registry, or a name resolves in one datapath and not the
//! other — exactly the PR 2 `bbr` bug, where the algorithm existed for
//! scenarios but `udp_transfer -- bbr` failed. This check extracts, from
//! each `install_registry` body, (a) every `X::register_algorithms()`
//! call and (b) every name string passed to a direct `register*` call,
//! and diagnoses any asymmetry.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// What one `install_registry` registers, with the fn's anchor position.
#[derive(Debug)]
pub struct Registrations {
    /// Union of `X` from `X::register_algorithms()` calls and literal
    /// names from direct `register*("name", ...)` calls.
    pub names: BTreeSet<String>,
    /// Line of the `install_registry` identifier.
    pub line: u32,
    /// Column of the `install_registry` identifier.
    pub col: u32,
}

/// Extract registrations from a lexed file, if it defines
/// `fn install_registry`.
pub fn extract(toks: &[Tok]) -> Option<Registrations> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let fn_ix = code
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident("install_registry"))?
        + 1;
    // Find the body braces.
    let open = (fn_ix..code.len()).find(|&j| code[j].is_punct('{'))?;
    let mut depth = 0i32;
    let mut close = code.len();
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        }
    }
    let body = &code[open..close];
    let mut names = BTreeSet::new();
    for (j, t) in body.iter().enumerate() {
        // `X::register_algorithms()` — record the source crate path `X`.
        if t.is_ident("register_algorithms")
            && j >= 3
            && body[j - 1].is_punct(':')
            && body[j - 2].is_punct(':')
            && body[j - 3].kind == TokKind::Ident
        {
            names.insert(format!("{}::register_algorithms", body[j - 3].text));
        }
        // Direct `register*("name", ...)` — record the literal name.
        if t.kind == TokKind::Ident
            && t.text.starts_with("register")
            && t.text != "register_algorithms"
            && body.get(j + 1).is_some_and(|p| p.is_punct('('))
        {
            if let Some(lit) = body.get(j + 2).filter(|l| l.kind == TokKind::Str) {
                names.insert(unquote(&lit.text));
            }
        }
    }
    Some(Registrations {
        names,
        line: code[fn_ix].line,
        col: code[fn_ix].col,
    })
}

/// Strip the quoting from a string literal's source text (`"x"`,
/// `r#"x"#`, `b"x"` all yield `x`). Lossy on escapes, which algorithm
/// names never contain.
fn unquote(lit: &str) -> String {
    lit.trim_start_matches(['r', 'b'])
        .trim_matches('#')
        .trim_matches('"')
        .to_string()
}

/// Compare the two sides; one diagnostic per missing entry, anchored at
/// the deficient side's `install_registry`.
pub fn check(a: (&str, &Registrations), b: (&str, &Registrations)) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for ((here_path, here), (there_path, there)) in [(a, b), (b, a)] {
        for missing in there.names.difference(&here.names) {
            diags.push(Diagnostic {
                id: "L005",
                path: here_path.to_string(),
                line: here.line,
                col: here.col,
                message: format!(
                    "registry parity broken: `{missing}` is registered in \
                     {there_path} but not here — the name would resolve on one \
                     datapath and fail on the other"
                ),
                help: Some("add the same registration to both install_registry bodies".to_string()),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const SIDE_A: &str = r#"
        pub fn install_registry() {
            ONCE.call_once(|| {
                pcc_core::register_algorithms();
                pcc_tcp::register_algorithms();
                register_alias("reno", "newreno");
            });
        }
    "#;

    #[test]
    fn extracts_both_call_forms() {
        let r = extract(&lex(SIDE_A)).expect("found fn");
        let names: Vec<&str> = r.names.iter().map(|s| s.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "pcc_core::register_algorithms",
                "pcc_tcp::register_algorithms",
                "reno"
            ]
        );
    }

    #[test]
    fn symmetric_sides_are_clean() {
        let a = extract(&lex(SIDE_A)).unwrap();
        let b = extract(&lex(SIDE_A)).unwrap();
        assert!(check(("a.rs", &a), ("b.rs", &b)).is_empty());
    }

    #[test]
    fn missing_registration_fires_on_the_deficient_side() {
        let a = extract(&lex(SIDE_A)).unwrap();
        let b = extract(&lex(
            "fn install_registry() { pcc_core::register_algorithms(); }",
        ))
        .unwrap();
        let diags = check(("full.rs", &a), ("partial.rs", &b));
        assert_eq!(diags.len(), 2, "{diags:?}"); // tcp call + reno alias
        assert!(diags
            .iter()
            .all(|d| d.path == "partial.rs" && d.id == "L005"));
    }

    #[test]
    fn no_fn_no_extraction() {
        assert!(extract(&lex("fn other() {}")).is_none());
    }
}
