//! L006 dep-free: every `Cargo.toml` dependency must be an in-workspace
//! path dependency.
//!
//! The build environment has no network access (see the proptest shim's
//! origin story), so a registry/git dependency would break the build the
//! moment the lockfile needs refreshing — and silently couples results
//! to code the repo does not pin. A minimal line-oriented TOML scan is
//! enough: dependency sections are flat, and Cargo requires inline
//! tables on one line.

use crate::diag::Diagnostic;

/// Lint one manifest. `path` is the workspace-relative label used in
/// diagnostics.
pub fn lint_manifest(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.foo]` sub-table: (dep name, header line), pending
    // until we see a `path =` key or the next section.
    let mut pending_table: Option<(String, u32)> = None;
    let mut pending_has_path = false;

    let close_pending =
        |pending: &mut Option<(String, u32)>, has_path: &mut bool, diags: &mut Vec<Diagnostic>| {
            if let Some((name, line)) = pending.take() {
                if !*has_path {
                    diags.push(violation(
                        path,
                        line,
                        1,
                        &name,
                        "its table has no `path` key",
                    ));
                }
            }
            *has_path = false;
        };

    for (ix, raw) in src.lines().enumerate() {
        let line_no = ix as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim();
            close_pending(&mut pending_table, &mut pending_has_path, &mut diags);
            if let Some(dep_name) = header
                .strip_prefix("dependencies.")
                .or_else(|| header.strip_prefix("dev-dependencies."))
                .or_else(|| header.strip_prefix("build-dependencies."))
            {
                // `[dependencies.foo]` long form.
                in_dep_section = false;
                pending_table = Some((dep_name.to_string(), line_no));
            } else {
                in_dep_section = is_dep_section(header);
            }
            continue;
        }
        if pending_table.is_some() {
            if let Some((key, _)) = split_kv(line) {
                if key == "path" {
                    pending_has_path = true;
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = split_kv(line) else {
            continue;
        };
        if value.starts_with('{') {
            if !inline_table_has_path(value) {
                diags.push(violation(
                    path,
                    line_no,
                    1,
                    name,
                    "its inline table has no `path` key",
                ));
            }
        } else if name.ends_with(".path") || name.ends_with(".workspace") {
            // `foo.path = "..."` is fine; `foo.workspace = true` resolves
            // through `[workspace.dependencies]`, which is itself scanned.
        } else {
            // `foo = "1.0"` (registry) or `foo.workspace = true` etc.
            diags.push(violation(
                path,
                line_no,
                1,
                name,
                "it is not declared with a `path`",
            ));
        }
    }
    close_pending(&mut pending_table, &mut pending_has_path, &mut diags);
    diags
}

fn violation(path: &str, line: u32, col: u32, dep: &str, why: &str) -> Diagnostic {
    Diagnostic {
        id: "L006",
        path: path.to_string(),
        line,
        col,
        message: format!(
            "dependency `{dep}` is not an in-workspace path dep ({why}): the \
             no-network build cannot fetch it"
        ),
        help: Some(
            "declare it as `{ path = \"../<crate>\" }` or vendor it as a workspace member"
                .to_string(),
        ),
    }
}

fn is_dep_section(header: &str) -> bool {
    matches!(
        header,
        "dependencies" | "dev-dependencies" | "build-dependencies"
    ) || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// Split `key = value` (None for section-less junk).
fn split_kv(line: &str) -> Option<(&str, &str)> {
    let eq = line.find('=')?;
    Some((line[..eq].trim(), line[eq + 1..].trim()))
}

/// Does `{ ... }` contain a top-level `path` key?
fn inline_table_has_path(value: &str) -> bool {
    let inner = value.trim_start_matches('{').trim_end_matches('}');
    inner
        .split(',')
        .any(|kv| kv.split('=').next().is_some_and(|k| k.trim() == "path"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_deps_are_clean() {
        let src = "[package]\nname = \"x\"\nversion = \"1.0\"\n\n[dependencies]\npcc-core = { path = \"../core\" }\n\n[dev-dependencies]\nproptest = { path = \"../proptest\" }\n";
        assert!(lint_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn registry_and_git_deps_fire() {
        let src = "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\", features = [\"std\"] }\nfoo = { git = \"https://example.com/foo\" }\n";
        let diags = lint_manifest("Cargo.toml", src);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert_eq!(diags[0].line, 2);
        assert!(diags.iter().all(|d| d.id == "L006"));
    }

    #[test]
    fn long_form_dep_table_needs_path() {
        let good = "[dependencies.pcc-core]\npath = \"../core\"\n";
        assert!(lint_manifest("Cargo.toml", good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1.0\"\n\n[features]\n";
        let diags = lint_manifest("Cargo.toml", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn package_section_is_not_a_dep_section() {
        let src = "[package]\nname = \"pcc\"\nversion.workspace = true\n";
        assert!(lint_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn target_specific_sections_are_covered() {
        let src = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(lint_manifest("Cargo.toml", src).len(), 1);
    }
}
