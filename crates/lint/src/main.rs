//! `pcc-lint` CLI: the determinism & hygiene gate.
//!
//! ```text
//! pcc-lint [--deny-all] [--json] [--root <dir>] [--list]
//! ```
//!
//! * default: report diagnostics, exit 0 (advisory, for the dev loop);
//! * `--deny-all`: exit non-zero on ANY diagnostic — unsuppressed lint
//!   hit or reason-less suppression — the CI contract;
//! * `--json`: machine-readable diagnostics on stdout;
//! * `--list`: print the lint catalog and exit.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!(
                    "pcc-lint: determinism & hygiene auditor\n\n\
                     usage: pcc-lint [--deny-all] [--json] [--root <dir>] [--list]\n\n\
                     --deny-all  exit non-zero on any diagnostic (the CI gate)\n\
                     --json      machine-readable output\n\
                     --root DIR  workspace root (default: walk up from cwd)\n\
                     --list      print the lint catalog"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        println!("{:<6} {:<22} rule", "id", "slug");
        for l in pcc_lint::rules::CATALOG {
            println!("{:<6} {:<22} {}", l.id, l.slug, l.rule);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| pcc_lint::walk::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("pcc-lint: no workspace root found (set --root)");
            return ExitCode::from(2);
        }
    };

    let report = match pcc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pcc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", pcc_lint::diag::render_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render_human());
        }
    }
    eprintln!(
        "pcc-lint: {} file(s), {} manifest(s) scanned, {} diagnostic(s)",
        report.files_scanned,
        report.manifests_scanned,
        report.diagnostics.len()
    );
    if deny_all && !report.diagnostics.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
