//! L008 batched-conformance: every registered algorithm is certified on
//! the off-path control plane.
//!
//! The batched-report conformance battery in `tests/cc_conformance.rs`
//! drives each entry of its `BATCHED_CONFORMANCE` list end-to-end on
//! 1-RTT aggregated `MeasurementReport`s. This check extracts that list
//! and, from every `fn register_algorithms` body, each *literal* name
//! handed to a direct `register*("name", ...)` call — the same extraction
//! convention as the L005 registry-parity check — and diagnoses any
//! registration whose name is absent from the list. A deliberate gap
//! (an algorithm that genuinely cannot run batched) is documented
//! in-place with `// lint: allow(L008) — <reason>` at the registration.
//!
//! Names constructed dynamically (the TCP family's `format!("{name}")`
//! loop) carry no literal and are invisible here by design; the runtime
//! set-equality test `batched_conformance_list_matches_the_registry`
//! closes that hole against the live registry.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};

/// The extracted `BATCHED_CONFORMANCE` list with its source anchor.
#[derive(Debug)]
pub struct ConformanceList {
    /// Every literal entry of the list.
    pub names: BTreeSet<String>,
    /// Line of the `BATCHED_CONFORMANCE` identifier.
    pub line: u32,
    /// Column of the `BATCHED_CONFORMANCE` identifier.
    pub col: u32,
}

/// One literal registration site inside a `register_algorithms` body.
#[derive(Debug)]
pub struct RegSite {
    /// The registered name.
    pub name: String,
    /// Line of the name literal.
    pub line: u32,
    /// Column of the name literal.
    pub col: u32,
}

/// Extract the `BATCHED_CONFORMANCE` const's entries from a lexed file,
/// if it defines one: every string literal between the identifier and the
/// statement's terminating `;`.
pub fn extract_list(toks: &[Tok]) -> Option<ConformanceList> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let ix = code
        .iter()
        .position(|t| t.is_ident("BATCHED_CONFORMANCE"))?;
    let mut names = BTreeSet::new();
    for t in code.iter().skip(ix + 1) {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokKind::Str {
            names.insert(unquote(&t.text));
        }
    }
    Some(ConformanceList {
        names,
        line: code[ix].line,
        col: code[ix].col,
    })
}

/// Extract every literal registration from a lexed file's
/// `fn register_algorithms` body: `register*("name", ...)` call sites
/// (including `register_alias`), anchored at the name literal.
pub fn extract_registered(toks: &[Tok]) -> Vec<RegSite> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let Some(fn_ix) = code
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident("register_algorithms"))
    else {
        return Vec::new();
    };
    let Some(open) = (fn_ix..code.len()).find(|&j| code[j].is_punct('{')) else {
        return Vec::new();
    };
    let mut depth = 0i32;
    let mut close = code.len();
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        }
    }
    let body = &code[open..close];
    let mut sites = Vec::new();
    for (j, t) in body.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text.starts_with("register")
            && t.text != "register_algorithms"
            && body.get(j + 1).is_some_and(|p| p.is_punct('('))
        {
            if let Some(lit) = body.get(j + 2).filter(|l| l.kind == TokKind::Str) {
                sites.push(RegSite {
                    name: unquote(&lit.text),
                    line: lit.line,
                    col: lit.col,
                });
            }
        }
    }
    sites
}

/// Strip the quoting from a string literal's source text.
fn unquote(lit: &str) -> String {
    lit.trim_start_matches(['r', 'b'])
        .trim_matches('#')
        .trim_matches('"')
        .to_string()
}

/// Diagnose every literal registration in `path` whose name the
/// conformance list does not carry.
pub fn check(list: &ConformanceList, path: &str, sites: &[RegSite]) -> Vec<Diagnostic> {
    sites
        .iter()
        .filter(|s| !list.names.contains(&s.name))
        .map(|s| Diagnostic {
            id: "L008",
            path: path.to_string(),
            line: s.line,
            col: s.col,
            message: format!(
                "`{}` is registered but absent from the batched conformance list \
                 (BATCHED_CONFORMANCE in tests/cc_conformance.rs) — it would never be \
                 exercised on the off-path report plane",
                s.name
            ),
            help: Some(
                "add it to BATCHED_CONFORMANCE (and make the batched battery pass), or \
                 suppress with `// lint: allow(L008) — <why it cannot run batched>`"
                    .to_string(),
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const LIST: &str = r#"
        const BATCHED_CONFORMANCE: &[&str] = &["cubic", "sabul"];
    "#;

    const REGS: &str = r#"
        pub fn register_algorithms() {
            registry::register_with_schema("sabul", S, f);
            registry::register_with_schema("pcp", S, f);
            registry::register_alias("reno", "newreno");
        }
    "#;

    #[test]
    fn list_extraction_collects_every_entry() {
        let l = extract_list(&lex(LIST)).expect("found const");
        let names: Vec<&str> = l.names.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["cubic", "sabul"]);
    }

    #[test]
    fn registration_extraction_takes_literal_first_args() {
        let sites = extract_registered(&lex(REGS));
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        // The alias's first literal is itself a resolvable name.
        assert_eq!(names, vec!["sabul", "pcp", "reno"]);
    }

    #[test]
    fn uncovered_registration_fires_covered_stays_silent() {
        let list = extract_list(&lex(LIST)).unwrap();
        let sites = extract_registered(&lex(REGS));
        let diags = check(&list, "rate/lib.rs", &sites);
        let flagged: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 2, "{flagged:?}"); // pcp + reno, not sabul
        assert!(diags.iter().all(|d| d.id == "L008"));
        assert!(diags.iter().any(|d| d.message.contains("`pcp`")));
        assert!(diags.iter().any(|d| d.message.contains("`reno`")));
    }

    #[test]
    fn dynamic_registrations_are_invisible() {
        // The TCP family's loop carries no literal name: nothing to check
        // statically (the runtime set-equality test covers it).
        let sites = extract_registered(&lex(
            "fn register_algorithms() { for n in ALL { register_with_schema(n, s, f); } }",
        ));
        assert!(sites.is_empty());
    }

    #[test]
    fn no_fn_no_sites() {
        assert!(extract_registered(&lex("fn other() {}")).is_empty());
        assert!(extract_list(&lex("const OTHER: &[&str] = &[];")).is_none());
    }
}
