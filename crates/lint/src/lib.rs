//! `pcc-lint`: the in-repo determinism & hygiene auditor.
//!
//! Every result this workspace reports rests on a determinism contract —
//! bit-identical tables at any `--jobs`, per-seed reproducible runs —
//! that a stray `HashMap` iteration, wall-clock read, or unseeded draw
//! silently breaks. This crate makes the contract *machine-checked*: a
//! dependency-free static analyzer with a hand-rolled Rust lexer
//! ([`lexer`]) that walks every workspace crate ([`walk`]) and enforces
//! the lint catalog ([`rules::CATALOG`]):
//!
//! | id | slug | rule |
//! |----|------|------|
//! | L001 | nondet-collection | no default-hasher `HashMap`/`HashSet` in deterministic crates |
//! | L002 | wall-clock-in-sim | no `Instant::now`/`SystemTime` outside the real-time crates |
//! | L003 | unseeded-randomness | every RNG derives from `SimRng`/seed plumbing |
//! | L004 | lock-poison | poison recovery via `PoisonError::into_inner`, not `unwrap` |
//! | L005 | registry-parity | both `install_registry` bodies register the same set |
//! | L006 | dep-free | every Cargo.toml dependency is an in-workspace path dep |
//! | L007 | float-total-order | `total_cmp`, never `partial_cmp(..).unwrap()` |
//! | L008 | batched-conformance | every registered algorithm is batched-certified or carries an allow |
//! | L009 | unbudgeted-retry | real-datapath timeout loops carry backoff/dead-time budget state |
//!
//! Suppression is per-site and accountable: `// lint: allow(L00x) — <reason>`
//! on (or directly above) the offending line; a missing reason is itself
//! a diagnostic (`L000`, see [`suppress`]). `pcc-lint --deny-all` is the
//! CI gate: it exits non-zero on any diagnostic.

pub mod batched;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod parity;
pub mod rules;
pub mod suppress;
pub mod walk;

use std::io;
use std::path::Path;

use diag::Diagnostic;
use rules::Policy;

/// Crates exempt from L001/L002: their entire job is real sockets
/// (`pcc-udp`) or wall-clock measurement (`pcc-bench`), so their outputs
/// are outside the determinism contract.
pub const REAL_TIME_CRATES: &[&str] = &["pcc-udp", "pcc-bench"];

/// The crates whose `install_registry` bodies L005 compares.
pub const PARITY_CRATES: [&str; 2] = ["pcc-scenarios", "pcc-udp"];

/// Crates held to L009: they retry over real sockets, where an unbudgeted
/// timeout loop means retrying a dead peer forever (sim runs are bounded
/// by their horizon, so the rule does not apply there).
pub const RETRY_BUDGET_CRATES: &[&str] = &["pcc-udp"];

/// Result of a workspace lint run.
pub struct Report {
    /// Every unsuppressed finding, sorted by (path, line, col, id).
    pub diagnostics: Vec<Diagnostic>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Manifests scanned.
    pub manifests_scanned: usize,
}

/// Lint one source file: token rules filtered through its suppression
/// comments, plus `L000` for malformed suppressions. Exposed for the
/// fixture tests; [`lint_workspace`] is the real entry point.
pub fn lint_source(path: &str, src: &str, policy: &Policy) -> Vec<Diagnostic> {
    let toks = lexer::lex(src);
    let (allows, mut diags) = suppress::collect(path, &toks);
    diags.extend(
        rules::run(path, &toks, policy)
            .into_iter()
            .filter(|d| !suppress::is_suppressed(&allows, d.id, d.line)),
    );
    diags
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let ws = walk::load(root)?;
    let mut diagnostics = Vec::new();

    // Per-file token lints (L000–L004, L007).
    for f in &ws.sources {
        let policy = Policy {
            crate_name: f.crate_name.clone(),
            real_time: REAL_TIME_CRATES.contains(&f.crate_name.as_str()),
            retry_budget: RETRY_BUDGET_CRATES.contains(&f.crate_name.as_str()),
        };
        diagnostics.extend(lint_source(&f.rel_path, &f.src, &policy));
    }

    // L005 registry parity: find each side's `install_registry`.
    let mut sides: Vec<Option<(String, parity::Registrations)>> = vec![None, None];
    for f in &ws.sources {
        let Some(slot) = PARITY_CRATES.iter().position(|c| *c == f.crate_name) else {
            continue;
        };
        if let Some(regs) = parity::extract(&lexer::lex(&f.src)) {
            sides[slot] = Some((f.rel_path.clone(), regs));
        }
    }
    match (&sides[0], &sides[1]) {
        (Some(a), Some(b)) => {
            diagnostics.extend(parity::check((&a.0, &a.1), (&b.0, &b.1)));
        }
        _ => {
            for (slot, side) in sides.iter().enumerate() {
                if side.is_none() {
                    diagnostics.push(Diagnostic {
                        id: "L005",
                        path: "Cargo.toml".to_string(),
                        line: 1,
                        col: 1,
                        message: format!(
                            "registry-parity anchor lost: no `fn install_registry` found in \
                             crate `{}` — if it moved or was renamed, update pcc-lint's \
                             PARITY_CRATES so the cross-datapath check keeps running",
                            PARITY_CRATES[slot]
                        ),
                        help: None,
                    });
                }
            }
        }
    }

    // L008 batched-conformance coverage: locate the BATCHED_CONFORMANCE
    // list, then check every `register_algorithms` body's literal names
    // against it. Suppressions at the registration site are honoured, so
    // a deliberate gap reads as `// lint: allow(L008) — <reason>`.
    let mut conf_list: Option<batched::ConformanceList> = None;
    let mut reg_files: Vec<(String, Vec<batched::RegSite>, Vec<suppress::Allow>)> = Vec::new();
    for f in &ws.sources {
        if !f.src.contains("BATCHED_CONFORMANCE") && !f.src.contains("fn register_algorithms") {
            continue;
        }
        let toks = lexer::lex(&f.src);
        if conf_list.is_none() {
            conf_list = batched::extract_list(&toks);
        }
        let sites = batched::extract_registered(&toks);
        if !sites.is_empty() {
            let (allows, _) = suppress::collect(&f.rel_path, &toks);
            reg_files.push((f.rel_path.clone(), sites, allows));
        }
    }
    match &conf_list {
        Some(list) => {
            for (path, sites, allows) in &reg_files {
                diagnostics.extend(
                    batched::check(list, path, sites)
                        .into_iter()
                        .filter(|d| !suppress::is_suppressed(allows, d.id, d.line)),
                );
            }
        }
        None => diagnostics.push(Diagnostic {
            id: "L008",
            path: "Cargo.toml".to_string(),
            line: 1,
            col: 1,
            message: "batched-conformance anchor lost: no `BATCHED_CONFORMANCE` const found \
                      in the workspace — if the list moved or was renamed, update pcc-lint's \
                      batched module so the coverage check keeps running"
                .to_string(),
            help: None,
        }),
    }

    // L006 dep-free on every manifest.
    for m in &ws.manifests {
        diagnostics.extend(manifest::lint_manifest(&m.rel_path, &m.src));
    }

    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.id).cmp(&(b.path.as_str(), b.line, b.col, b.id))
    });
    Ok(Report {
        diagnostics,
        files_scanned: ws.sources.len(),
        manifests_scanned: ws.manifests.len(),
    })
}
