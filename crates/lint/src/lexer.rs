//! A hand-rolled Rust lexer, just deep enough to lint safely.
//!
//! The lints in this crate are token-pattern matchers, so the one thing
//! the lexer must get *right* is the boundary between code and non-code:
//! a `HashMap` inside a string literal, a doc comment, or a `r#"raw"#`
//! string must never produce an `Ident` token. Everything else can be
//! coarse — numbers are one blob, multi-character operators come out as
//! single-character puncts — because no lint cares.
//!
//! Guarantees (enforced by the proptest suite in `tests/`):
//!
//! * never panics, on any byte sequence;
//! * comments and every literal form (strings, raw strings with any hash
//!   depth, byte strings, chars, lifetimes-vs-chars) are tokenized as
//!   opaque units, so lint triggers hidden inside them are invisible;
//! * every token carries the 1-based line/column of its first character.

/// What a token is. See the module docs for the fidelity contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#idents`, without the `r#`).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// Numeric literal, consumed as one blob including suffixes.
    Num,
    /// String / raw-string / byte-string literal, consumed opaquely.
    Str,
    /// Character or byte-character literal, consumed opaquely.
    Char,
    /// Any other single character of code.
    Punct,
    /// `// ...` (text includes the slashes, excludes the newline).
    LineComment,
    /// `/* ... */`, nesting respected (text includes the delimiters).
    BlockComment,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Str`/`Char`/comments: the raw spelling).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Tok {
    /// Is this token the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this token the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, tracking line/col. Multi-byte UTF-8 continuation
    /// bytes do not advance the column, so columns count characters.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Total: every byte is consumed, unterminated literals
/// and comments simply extend to end-of-input, and nothing panics.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col, start) = (c.line, c.col, c.pos);
        match b {
            b if b.is_ascii_whitespace() => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(n) = c.peek() {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break, // unterminated: swallow to EOF
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            b'"' => {
                lex_string(&mut c);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&c) => {
                let kind = lex_prefixed_literal(&mut c);
                toks.push(Tok {
                    kind,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                toks.push(Tok {
                    kind,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            b if is_ident_start(b) => {
                while let Some(n) = c.peek() {
                    if !is_ident_continue(n) {
                        break;
                    }
                    c.bump();
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            b if b.is_ascii_digit() => {
                while let Some(n) = c.peek() {
                    if is_ident_continue(n) {
                        c.bump();
                    } else if n == b'.' && c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5` continues the number; `1..n` does not.
                        c.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
            _ => {
                c.bump();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.text_since(start),
                    line,
                    col,
                });
            }
        }
    }
    toks
}

/// At a `r`/`b`: does a raw string (`r"`, `r#`), byte string (`b"`,
/// `br`), or byte char (`b'`) start here — as opposed to an ordinary
/// identifier like `rate` or a raw identifier `r#ident`?
fn starts_raw_or_byte_literal(c: &Cursor<'_>) -> bool {
    match (c.peek(), c.peek_at(1), c.peek_at(2)) {
        (Some(b'r'), Some(b'"'), _) => true,
        // `r#` could be a raw string `r#"`, a deeper one `r##"`, or a raw
        // identifier `r#ident`; all are routed to the prefixed-literal
        // lexer, which disambiguates after counting hashes.
        (Some(b'r'), Some(b'#'), Some(n)) => n == b'"' || n == b'#' || is_ident_start(n),
        (Some(b'b'), Some(b'"'), _) => true,
        (Some(b'b'), Some(b'\''), _) => true,
        (Some(b'b'), Some(b'r'), Some(b'"')) => true,
        (Some(b'b'), Some(b'r'), Some(b'#')) => true,
        _ => false,
    }
}

/// Lex a `"` string body (cursor on the opening quote). Handles `\"`,
/// `\\`, and multi-line strings; unterminated swallows to EOF.
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump(); // whatever is escaped, even a quote
            }
            b'"' => {
                c.bump();
                return;
            }
            _ => {
                c.bump();
            }
        }
    }
}

/// Lex a literal starting with `r`/`b`/`br` (cursor on the prefix).
fn lex_prefixed_literal(c: &mut Cursor<'_>) -> TokKind {
    let mut raw = false;
    if c.peek() == Some(b'b') {
        c.bump();
        if c.peek() == Some(b'r') {
            raw = true;
            c.bump();
        }
    } else if c.peek() == Some(b'r') {
        raw = true;
        c.bump();
    }
    if !raw {
        // `b"..."` or `b'.'`: same body rules as the unprefixed forms.
        return match c.peek() {
            Some(b'"') => {
                lex_string(c);
                TokKind::Str
            }
            _ => lex_quote(c),
        };
    }
    // Raw (byte) string: count hashes, then scan for `"` + that many `#`.
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek() != Some(b'"') {
        // `r#ident` raw identifier (or stray `r#`): emit as ident-ish.
        while let Some(n) = c.peek() {
            if !is_ident_continue(n) {
                break;
            }
            c.bump();
        }
        return TokKind::Ident;
    }
    c.bump(); // opening quote
    'scan: while let Some(b) = c.peek() {
        if b == b'"' {
            for k in 0..hashes {
                if c.peek_at(1 + k) != Some(b'#') {
                    c.bump();
                    continue 'scan;
                }
            }
            for _ in 0..=hashes {
                c.bump();
            }
            return TokKind::Str;
        }
        c.bump();
    }
    TokKind::Str // unterminated raw string: swallowed to EOF
}

/// Lex from a `'`: either a lifetime (`'a`, `'static`) or a char literal
/// (`'x'`, `'\n'`, `'\u{1F600}'`). Cursor sits on the quote.
fn lex_quote(c: &mut Cursor<'_>) -> TokKind {
    c.bump(); // the quote
    match c.peek() {
        // Escape: definitely a char literal.
        Some(b'\\') => {
            c.bump();
            c.bump(); // the escaped character
            while let Some(b) = c.peek() {
                // \u{...} bodies and the closing quote.
                c.bump();
                if b == b'\'' {
                    break;
                }
            }
            TokKind::Char
        }
        // `'a'` is a char; `'a` followed by anything else is a lifetime.
        Some(b) if is_ident_start(b) => {
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
                return TokKind::Char;
            }
            while let Some(n) = c.peek() {
                if !is_ident_continue(n) {
                    break;
                }
                c.bump();
            }
            TokKind::Lifetime
        }
        // `'3'`, `' '`, `'('` … any single char then a quote.
        Some(_) => {
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
            }
            TokKind::Char
        }
        None => TokKind::Punct, // lone trailing quote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            let b = r#"HashMap in a raw string"#;
            let c = b"HashMap bytes";
            let real = HashMap_marker;
        "##;
        assert_eq!(
            idents(src),
            vec![
                "let",
                "a",
                "let",
                "b",
                "let",
                "c",
                "let",
                "real",
                "HashMap_marker"
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_quote_in_char_does_not_derail() {
        let src = r"let q = '\''; let h = HashMap;";
        assert_eq!(idents(src), vec!["let", "q", "let", "h", "HashMap"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_string_hash_depth_respected() {
        // The `"#` inside does not close a `##`-delimited raw string.
        let src = r###"let s = r##"tricky "# HashMap "##; done"###;
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(
            idents("r#fn r#type normal"),
            vec!["r#fn", "r#type", "normal"]
        );
    }

    #[test]
    fn unterminated_forms_never_panic() {
        for src in ["\"unterminated", "/* open", "r#\"open", "'", "b\"x", "r#"] {
            let _ = lex(src);
        }
    }
}
