//! Suppression comments: `// lint: allow(L001) — <reason>`.
//!
//! A suppression is *scoped* (it covers its own line and the next line
//! that carries code) and *accountable* (the reason after the dash is
//! mandatory — a reason-less or malformed suppression is itself a
//! diagnostic, `L000`, so `--deny-all` fails on it). Several ids can be
//! allowed at once: `allow(L001, L004)`.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::rules;

/// One parsed, well-formed allow comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Lint ids this comment suppresses.
    pub ids: Vec<String>,
    /// Lines covered: the comment's own line and the next code line.
    pub lines: [u32; 2],
}

/// Scan `toks` for lint-control comments. Returns the well-formed
/// suppressions plus an `L000` diagnostic for every malformed one.
pub fn collect(path: &str, toks: &[Tok]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let body = match t.kind {
            TokKind::LineComment => t.text.trim_start_matches('/').trim(),
            TokKind::BlockComment => t
                .text
                .trim_start_matches("/*")
                .trim_end_matches("*/")
                .trim(),
            _ => continue,
        };
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let mut fail = |msg: String| {
            diags.push(Diagnostic {
                id: "L000",
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: msg,
                help: Some(
                    "write `// lint: allow(L00x) — <why this is sound>`; the reason is mandatory"
                        .to_string(),
                ),
            });
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow") else {
            fail(format!("unrecognized lint control `{body}`"));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            fail("suppression is missing its `(L00x)` id list".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            fail("suppression id list is missing its closing `)`".to_string());
            continue;
        };
        let (id_list, after) = rest.split_at(close);
        let ids: Vec<String> = id_list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if ids.is_empty() {
            fail("suppression allows no lint ids".to_string());
            continue;
        }
        if let Some(bad) = ids.iter().find(|id| !rules::is_known_id(id)) {
            fail(format!(
                "unknown lint id `{bad}` (known: {})",
                rules::known_ids().join(", ")
            ));
            continue;
        }
        let reason = after[1..] // past the ')'
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if reason.is_empty() {
            fail(format!(
                "suppression of {} carries no reason",
                ids.join(", ")
            ));
            continue;
        }
        let next_code_line = toks[i + 1..]
            .iter()
            .find(|n| {
                !matches!(n.kind, TokKind::LineComment | TokKind::BlockComment) && n.line > t.line
            })
            .map(|n| n.line)
            .unwrap_or(t.line);
        allows.push(Allow {
            ids,
            lines: [t.line, next_code_line],
        });
    }
    (allows, diags)
}

/// Is a diagnostic with `id` at `line` covered by one of `allows`?
pub fn is_suppressed(allows: &[Allow], id: &str, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.lines.contains(&line) && a.ids.iter().any(|i| i == id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn well_formed_allow_parses_and_scopes() {
        let toks = lex("// lint: allow(L001) — keyed by opaque ids; order never observed\nlet m = 1;\nlet n = 2;");
        let (allows, diags) = collect("f.rs", &toks);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lines, [1, 2]);
        assert!(is_suppressed(&allows, "L001", 1));
        assert!(is_suppressed(&allows, "L001", 2));
        assert!(!is_suppressed(&allows, "L001", 3));
        assert!(!is_suppressed(&allows, "L002", 2));
    }

    #[test]
    fn reasonless_allow_is_l000() {
        let (allows, diags) = collect("f.rs", &lex("// lint: allow(L002)\nx();"));
        assert!(allows.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].id, "L000");
        assert!(diags[0].message.contains("no reason"));
    }

    #[test]
    fn dash_variants_and_multi_id() {
        for sep in ["—", "--", "-", ":"] {
            let src = format!("// lint: allow(L001, L004) {sep} both are fine here\ny();");
            let (allows, diags) = collect("f.rs", &lex(&src));
            assert!(diags.is_empty(), "sep {sep}: {diags:?}");
            assert_eq!(allows[0].ids, vec!["L001", "L004"]);
        }
    }

    #[test]
    fn unknown_id_is_l000() {
        let (_, diags) = collect("f.rs", &lex("// lint: allow(L999) — nope"));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown lint id"));
    }

    #[test]
    fn non_lint_comments_are_ignored() {
        let (allows, diags) = collect(
            "f.rs",
            &lex("// just a note about lint: things\n// lintel: allow(L001) — no"),
        );
        assert!(allows.is_empty() && diags.is_empty());
    }
}
