//! Fixture tests: every lint id has a file under `fixtures/` that makes
//! it fire, and the expected diagnostics are pinned down to exact
//! `(id, line, col)` — so a lexer or rule regression that shifts an
//! anchor (or silently stops firing) fails loudly here.
//!
//! The `fixtures/` directory is excluded from the workspace walk (see
//! `walk::SKIP_DIRS`), so these deliberate violations never trip the
//! `--deny-all` CI gate.

use pcc_lint::lexer::lex;
use pcc_lint::rules::Policy;
use pcc_lint::{lint_source, manifest, parity};

fn det_policy() -> Policy {
    Policy {
        crate_name: "pcc-fixture".to_string(),
        real_time: false,
        retry_budget: false,
    }
}

/// Lint a fixture and reduce to sorted `(id, line, col)` triples.
fn triples(name: &str, src: &str) -> Vec<(&'static str, u32, u32)> {
    let mut out: Vec<(&'static str, u32, u32)> = lint_source(name, src, &det_policy())
        .into_iter()
        .map(|d| (d.id, d.line, d.col))
        .collect();
    out.sort();
    out
}

#[test]
fn l001_nondet_collection() {
    let got = triples("l001.rs", include_str!("../fixtures/l001.rs"));
    // The two bare imports fire; the reasoned allow covers the fn on the
    // next line; decoys in strings/comments are invisible.
    assert_eq!(got, vec![("L001", 2, 23), ("L001", 3, 23)]);
}

#[test]
fn l002_wall_clock() {
    let got = triples("l002.rs", include_str!("../fixtures/l002.rs"));
    // `use std::time::Instant` (naming the type) is NOT a hit; the
    // `::now()` call and any `SystemTime` mention are.
    assert_eq!(got, vec![("L002", 5, 14), ("L002", 6, 28)]);
}

#[test]
fn l003_unseeded_randomness() {
    let got = triples("l003.rs", include_str!("../fixtures/l003.rs"));
    assert_eq!(got, vec![("L003", 3, 19), ("L003", 4, 17), ("L003", 5, 14)]);
}

#[test]
fn l004_lock_poison() {
    let got = triples("l004.rs", include_str!("../fixtures/l004.rs"));
    // Anchored at the lock/read/write identifier, even when the chain
    // spans lines; `unwrap_or_else(PoisonError::into_inner)` and an
    // io::Read with arguments do not fire.
    assert_eq!(got, vec![("L004", 5, 16), ("L004", 6, 17), ("L004", 8, 10)]);
}

#[test]
fn l007_float_total_order() {
    let got = triples("l007.rs", include_str!("../fixtures/l007.rs"));
    assert_eq!(got, vec![("L007", 3, 24), ("L007", 4, 24)]);
}

#[test]
fn l009_unbudgeted_retry() {
    // Mirrors the pcc-udp policy: real_time (sockets are its job) and
    // retry_budget both on. The bare `LossKind::Timeout` in `classify`
    // fires because the file carries no backoff/budget witness ident;
    // `LossKind::Detected`, string/comment decoys, and the reasoned
    // allow in `allowed()` stay silent.
    let udp_policy = Policy {
        crate_name: "pcc-udp".to_string(),
        real_time: true,
        retry_budget: true,
    };
    let mut got: Vec<(&'static str, u32, u32)> =
        lint_source("l009.rs", include_str!("../fixtures/l009.rs"), &udp_policy)
            .into_iter()
            .map(|d| (d.id, d.line, d.col))
            .collect();
    got.sort();
    assert_eq!(got, vec![("L009", 7, 9)]);
    // The same file under the deterministic-crate policy is clean: the
    // rule only holds real-datapath retry loops to the budget contract.
    assert_eq!(
        triples("l009.rs", include_str!("../fixtures/l009.rs")),
        Vec::new()
    );
}

#[test]
fn l000_accountable_suppressions() {
    let got = triples("l000.rs", include_str!("../fixtures/l000.rs"));
    // A reasonless allow is L000 *and* suppresses nothing, so the L001
    // underneath it still fires; an unknown-id allow is a second L000
    // that equally fails to shield the HashMap on the line below it.
    assert_eq!(
        got,
        vec![
            ("L000", 2, 1),
            ("L000", 4, 1),
            ("L001", 3, 23),
            ("L001", 5, 9)
        ]
    );
}

#[test]
fn l005_registry_parity() {
    let full = parity::extract(&lex(include_str!("../fixtures/l005_scenarios.rs")))
        .expect("side A defines install_registry");
    let partial = parity::extract(&lex(include_str!("../fixtures/l005_udp.rs")))
        .expect("side B defines install_registry");
    let diags = parity::check(("l005_scenarios.rs", &full), ("l005_udp.rs", &partial));
    // Side B is missing the tcp family call and the alias; both
    // diagnostics anchor at *its* install_registry.
    assert_eq!(diags.len(), 2, "{diags:?}");
    for d in &diags {
        assert_eq!(
            (d.id, d.path.as_str(), d.line, d.col),
            ("L005", "l005_udp.rs", 2, 8)
        );
    }
    assert!(diags
        .iter()
        .any(|d| d.message.contains("pcc_tcp::register_algorithms")));
    assert!(diags.iter().any(|d| d.message.contains("`reno`")));
}

#[test]
fn l006_dep_free() {
    let diags = manifest::lint_manifest(
        "l006_Cargo.toml",
        include_str!("../fixtures/l006_Cargo.toml"),
    );
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.id, d.line)).collect();
    // serde (registry), rand (inline table without path), and the
    // long-form `[dev-dependencies.fetched]` table; pcc-core is fine.
    assert_eq!(got, vec![("L006", 6), ("L006", 7), ("L006", 9)]);
}

#[test]
fn clean_fixture_is_clean() {
    let got = triples("clean.rs", include_str!("../fixtures/clean.rs"));
    assert_eq!(
        got,
        Vec::new(),
        "triggers hidden in literals/comments must not fire"
    );
}
