//! Property tests for the hand-rolled lexer: it must be *total* (never
//! panic, whatever bytes it is fed) and must never hallucinate a lint
//! trigger out of a string literal or comment — the two properties the
//! whole analyzer's trustworthiness rests on.

use pcc_lint::lexer::{lex, TokKind};
use pcc_lint::lint_source;
use pcc_lint::rules::Policy;
use proptest::{prop_assert, prop_assert_eq, proptest, Strategy};

fn det_policy() -> Policy {
    Policy {
        crate_name: "pcc-prop".to_string(),
        real_time: false,
        retry_budget: false,
    }
}

/// Every identifier the token rules key on.
const TRIGGERS: &[&str] = &[
    "HashMap",
    "HashSet",
    "SystemTime",
    "thread_rng",
    "OsRng",
    "RandomState",
    "getrandom",
    "from_entropy",
];

/// Characters that stress the lexer's literal/comment state machine.
const SPICE: &[&str] = &[
    "\"", "'", "\\", "//", "/*", "*/", "r#", "r\"", "b\"", "#", "\n", "'a", "0x", "::",
];

proptest! {
    #[test]
    fn lexer_never_panics_on_junk(bytes in proptest::collection::vec(0u8..=255, 0..200usize)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        // Positions are 1-based and lines never go backwards.
        let mut last_line = 1;
        for t in &toks {
            prop_assert!(t.line >= 1 && t.col >= 1);
            prop_assert!(t.line >= last_line, "line went backwards at {:?}", t);
            last_line = t.line;
        }
    }

    #[test]
    fn lexer_never_panics_on_spiced_source(
        picks in proptest::collection::vec((0usize..SPICE.len(), 0usize..TRIGGERS.len()), 0..40usize)
    ) {
        // Interleave literal-delimiter shrapnel with trigger words: the
        // worst case for a state machine that tracks "am I in a string".
        let mut src = String::new();
        for (s, t) in picks {
            src.push_str(SPICE[s]);
            src.push_str(TRIGGERS[t]);
            src.push(' ');
        }
        let toks = lex(&src);
        prop_assert!(toks.len() <= src.len() + 1);
    }

    #[test]
    fn triggers_inside_literals_never_fire(t in (0usize..TRIGGERS.len()).prop_map(|i| TRIGGERS[i])) {
        for wrapped in [
            format!("let s = \"call {t}() here\";"),
            format!("let s = r#\"raw {t} text\"#;"),
            format!("// comment mentioning {t}\nlet x = 1;"),
            format!("/* block with {t}\n   spanning lines */ let x = 1;"),
            format!("let b = b\"{t}\";"),
        ] {
            let diags = lint_source("p.rs", &wrapped, &det_policy());
            prop_assert!(diags.is_empty(), "{t} fired from inside a literal: {diags:?}");
        }
        // The same trigger as a bare code identifier DOES fire — the
        // negative property above isn't vacuous.
        let bare = format!("let x = {t};");
        prop_assert_eq!(lint_source("p.rs", &bare, &det_policy()).len(), 1);
    }

    #[test]
    fn comment_tokens_carry_their_text(n in 1u32..50) {
        // A generated source of n comment lines lexes to exactly n
        // line-comment tokens at the right lines.
        let src: String = (0..n).map(|i| format!("// c{i}\n")).collect();
        let toks = lex(&src);
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::LineComment).collect();
        prop_assert_eq!(comments.len() as u32, n);
        for (i, c) in comments.iter().enumerate() {
            prop_assert_eq!(c.line, i as u32 + 1);
            prop_assert!(c.text.contains(&format!("c{i}")));
        }
    }
}
