//! The gate itself, as a test: linting the real workspace must produce
//! zero diagnostics. This is the same check CI runs via
//! `pcc-lint --deny-all`, kept here too so a plain `cargo test` catches
//! a determinism-contract violation without the extra CI step.

use std::path::Path;

use pcc_lint::lint_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let report = lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — did the member list parse?",
        report.files_scanned
    );
    assert!(
        report.manifests_scanned >= 13,
        "walker found only {} manifests",
        report.manifests_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be lint-clean, got:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
