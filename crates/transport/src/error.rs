//! Typed transfer failures shared by both datapaths.
//!
//! The simulator engine ([`crate::sender::CcSender`]) and the real-socket
//! engine (`pcc-udp`) both convert an expired dead-time budget into a
//! [`TransferError::Stalled`] carrying partial-progress statistics, instead
//! of retrying a dead peer forever on a capped-backoff timer.

use std::fmt;

/// A transfer that aborted rather than completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferError {
    /// The dead-time budget expired: no forward progress (no new bytes
    /// cumulatively acknowledged) for longer than the configured budget,
    /// with the retransmission timer firing fruitlessly the whole time.
    Stalled {
        /// Milliseconds since the last forward progress when the engine
        /// gave up.
        dark_ms: u64,
        /// Consecutive RTO firings without any progress in between.
        timeouts: u64,
        /// Bytes cumulatively acknowledged before the stall (partial
        /// progress; the prefix the receiver is known to hold).
        acked_bytes: u64,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::Stalled {
                dark_ms,
                timeouts,
                acked_bytes,
            } => write!(
                f,
                "transfer stalled: no progress for {dark_ms} ms \
                 ({timeouts} consecutive timeouts, {acked_bytes} bytes acked)"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_progress_stats() {
        let e = TransferError::Stalled {
            dark_ms: 30_000,
            timeouts: 7,
            acked_bytes: 123_456,
        };
        let s = e.to_string();
        assert!(s.contains("30000 ms"), "{s}");
        assert!(s.contains("7 consecutive"), "{s}");
        assert!(s.contains("123456 bytes"), "{s}");
    }

    #[test]
    fn round_trips_through_io_error() {
        // The UDP datapath ships it inside `io::Error`; callers downcast.
        let e = TransferError::Stalled {
            dark_ms: 1,
            timeouts: 2,
            acked_bytes: 3,
        };
        let io = std::io::Error::new(std::io::ErrorKind::TimedOut, e);
        let back = io
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<TransferError>())
            .expect("downcast");
        assert_eq!(*back, e);
    }
}
