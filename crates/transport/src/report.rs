//! Batched measurement reports: the off-path control plane's data format.
//!
//! PCC's decisions are interval-structured (per-monitor-interval utility,
//! §2 of the paper), and CCP-style architectures generalize the point:
//! congestion logic does not need to run on every ACK. This module defines
//! [`MeasurementReport`] — everything an algorithm needs to know about one
//! measurement interval — and [`ReportAggregator`], the engine-side
//! accumulator that folds per-ACK/loss/send events into a report with *no
//! information loss on the aggregate fields* (summed bytes/packets, RTT
//! bounds, interval span; proptested below).
//!
//! The engine emits one report per `report_interval` (default 1 smoothed
//! RTT, adaptive) through [`crate::cc::CongestionControl::on_report`] when
//! an algorithm opts into [`crate::cc::ReportMode::Batched`].

use pcc_simnet::time::{SimDuration, SimTime};

use crate::cc::{AckEvent, LossEvent, LossKind, SentEvent};

/// One aggregated measurement interval, delivered to a batched algorithm.
///
/// Event-sourced fields (sent/acked/lost counts, RTT bounds, first/last
/// timestamps) are exact sums over the events of the interval; the
/// engine-stamped fields (`srtt`, `min_rtt`, `in_flight`, `cum_ack`,
/// `in_recovery`) are snapshots taken at emission time.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasurementReport {
    /// Interval start (previous report's end).
    pub start: SimTime,
    /// Interval end (emission time).
    pub end: SimTime,

    /// Data packets transmitted in the interval (including retx).
    pub sent_pkts: u64,
    /// Bytes transmitted in the interval (including retx).
    pub sent_bytes: u64,
    /// Retransmissions among [`MeasurementReport::sent_pkts`].
    pub retx_pkts: u64,

    /// Packets newly acknowledged in the interval.
    pub acked_pkts: u64,
    /// Bytes newly acknowledged in the interval.
    pub acked_bytes: u64,
    /// Packets newly acknowledged *above* the cumulative-ack point
    /// (selectively acked — out-of-order delivery).
    pub sacked_pkts: u64,
    /// Bytes newly acknowledged above the cumulative-ack point.
    pub sacked_bytes: u64,

    /// Packets newly declared lost in the interval.
    pub lost_pkts: u64,
    /// Bytes newly declared lost in the interval.
    pub lost_bytes: u64,
    /// Loss-event deliveries (each batch of sequences counts once).
    pub loss_events: u32,
    /// At least one loss event in the interval began a recovery episode.
    pub new_loss_episode: bool,
    /// Whole-window (RTO-style) loss declarations in the interval.
    pub timeouts: u32,

    /// Smallest exact RTT sample in the interval.
    pub rtt_min: Option<SimDuration>,
    /// Largest exact RTT sample in the interval.
    pub rtt_max: Option<SimDuration>,
    /// First exact RTT sample (for the latency-gradient slope).
    pub first_rtt: Option<SimDuration>,
    /// Last exact RTT sample.
    pub last_rtt: Option<SimDuration>,
    /// Sum of exact RTT samples, nanoseconds (mean = sum / samples).
    pub rtt_sum_ns: u128,
    /// Number of exact RTT samples.
    pub rtt_samples: u64,

    /// Receiver-side arrival timestamp of the interval's first ack event.
    pub first_recv: Option<SimTime>,
    /// Receiver-side arrival timestamp of the interval's last ack event.
    pub last_recv: Option<SimTime>,

    /// Engine snapshot at emission: smoothed RTT.
    pub srtt: SimDuration,
    /// Engine snapshot at emission: path minimum RTT estimate.
    pub min_rtt: SimDuration,
    /// Engine snapshot at emission: packets in flight.
    pub in_flight: u64,
    /// Engine snapshot at emission: receiver's cumulative-ack point.
    pub cum_ack: u64,
    /// Packet size in bytes.
    pub mss: u32,
    /// Engine snapshot at emission: inside a loss-recovery episode.
    pub in_recovery: bool,
}

impl MeasurementReport {
    /// Interval length.
    pub fn span(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// Mean of the interval's exact RTT samples; the engine SRTT snapshot
    /// when the interval had none.
    pub fn mean_rtt(&self) -> SimDuration {
        if self.rtt_samples == 0 {
            self.srtt
        } else {
            SimDuration::from_nanos((self.rtt_sum_ns / self.rtt_samples as u128) as u64)
        }
    }

    /// Loss rate over the interval's *resolved* packets:
    /// `lost / (acked + lost)`; 0 when nothing resolved.
    pub fn loss_rate(&self) -> f64 {
        let resolved = self.acked_pkts + self.lost_pkts;
        if resolved == 0 {
            0.0
        } else {
            self.lost_pkts as f64 / resolved as f64
        }
    }

    /// Estimated delivery rate, bits/sec, using the same ack-spacing
    /// formula as the PCC monitor: bytes between the first and last ack
    /// arrival over their receiver-side spacing, capped by the
    /// whole-interval average, falling back to `acked_bytes / span` when
    /// the interval has fewer than two ack arrivals.
    pub fn delivery_rate_bps(&self) -> f64 {
        let span_secs = self.span().as_secs_f64();
        let interval_rate = if span_secs > 0.0 {
            self.acked_bytes as f64 * 8.0 / span_secs
        } else {
            0.0
        };
        if let (Some(first), Some(last)) = (self.first_recv, self.last_recv) {
            if self.acked_pkts >= 2 && last > first {
                let per_pkt = self.acked_bytes as f64 / self.acked_pkts as f64;
                let spacing = last.saturating_since(first).as_secs_f64();
                let spaced = (self.acked_pkts - 1) as f64 * per_pkt * 8.0 / spacing;
                return spaced.min(if interval_rate > 0.0 {
                    interval_rate
                } else {
                    spaced
                });
            }
        }
        interval_rate
    }

    /// Latency gradient over the interval: `(last_rtt − first_rtt)` over
    /// the receiver-side time between those samples, seconds per second.
    /// `None` without two distinct samples.
    pub fn rtt_slope(&self) -> Option<f64> {
        let (r0, r1) = (self.first_rtt?, self.last_rtt?);
        let (t0, t1) = (self.first_recv?, self.last_recv?);
        if t1 <= t0 {
            return None;
        }
        let dt = t1.saturating_since(t0).as_secs_f64();
        Some((r1.as_secs_f64() - r0.as_secs_f64()) / dt)
    }
}

/// Engine-side accumulator folding per-event data into the current
/// [`MeasurementReport`]. Aggregation is lossless on the summed fields:
/// for any event sequence and any partition of it into intervals, the
/// summed report fields equal the one-shot totals (proptested below).
#[derive(Debug, Default)]
pub struct ReportAggregator {
    cur: MeasurementReport,
    events: u64,
}

impl ReportAggregator {
    /// Start the first interval at `now`.
    pub fn begin(&mut self, now: SimTime) {
        self.cur = MeasurementReport {
            start: now,
            end: now,
            ..Default::default()
        };
        self.events = 0;
    }

    /// True if any event was folded into the current interval.
    pub fn has_events(&self) -> bool {
        self.events > 0
    }

    /// Fold a transmission.
    pub fn on_sent(&mut self, ev: &SentEvent) {
        self.events += 1;
        self.cur.sent_pkts += 1;
        self.cur.sent_bytes += ev.bytes as u64;
        if ev.retx {
            self.cur.retx_pkts += 1;
        }
    }

    /// Fold an ACK.
    pub fn on_ack(&mut self, ack: &AckEvent) {
        self.events += 1;
        let newly = ack.newly_acked as u64;
        self.cur.acked_pkts += newly;
        self.cur.acked_bytes += newly * ack.mss as u64;
        if ack.seq >= ack.cum_ack {
            // The acked sequence sits above the cumulative point: this
            // delivery was selective (out of order).
            self.cur.sacked_pkts += newly;
            self.cur.sacked_bytes += newly * ack.mss as u64;
        }
        if ack.sampled {
            let r = ack.rtt;
            self.cur.rtt_min = Some(self.cur.rtt_min.map_or(r, |m| m.min(r)));
            self.cur.rtt_max = Some(self.cur.rtt_max.map_or(r, |m| m.max(r)));
            if self.cur.first_rtt.is_none() {
                self.cur.first_rtt = Some(r);
            }
            self.cur.last_rtt = Some(r);
            self.cur.rtt_sum_ns += r.as_nanos() as u128;
            self.cur.rtt_samples += 1;
        }
        if self.cur.first_recv.is_none() {
            self.cur.first_recv = Some(ack.recv_at);
        }
        self.cur.last_recv = Some(ack.recv_at);
    }

    /// Fold a loss event.
    pub fn on_loss(&mut self, loss: &LossEvent) {
        self.events += 1;
        self.cur.lost_pkts += loss.seqs.len() as u64;
        self.cur.lost_bytes += loss.seqs.len() as u64 * loss.mss as u64;
        self.cur.loss_events += 1;
        if loss.new_episode {
            self.cur.new_loss_episode = true;
        }
        if loss.kind == LossKind::Timeout {
            self.cur.timeouts += 1;
        }
    }

    /// Close the current interval at `now` and return its report; the next
    /// interval begins at `now`, so consecutive reports tile the timeline.
    /// The caller stamps the engine-snapshot fields on the returned report.
    pub fn take(&mut self, now: SimTime) -> MeasurementReport {
        let mut rep = std::mem::take(&mut self.cur);
        rep.end = now;
        self.cur = MeasurementReport {
            start: now,
            end: now,
            ..Default::default()
        };
        self.events = 0;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, seq: u64, cum: u64, newly: u32, rtt_ms: u64, sampled: bool) -> AckEvent {
        let rtt = SimDuration::from_millis(rtt_ms);
        AckEvent {
            now: SimTime::from_millis(now_ms),
            seq,
            rtt,
            sampled,
            srtt: rtt,
            min_rtt: rtt,
            max_rtt: rtt,
            recv_at: SimTime::from_millis(now_ms),
            probe_train: None,
            of_retx: false,
            cum_ack: cum,
            newly_acked: newly,
            in_flight: 5,
            mss: 1000,
            in_recovery: false,
        }
    }

    #[test]
    fn aggregates_acks_and_losses() {
        let mut agg = ReportAggregator::default();
        agg.begin(SimTime::ZERO);
        agg.on_sent(&SentEvent {
            now: SimTime::from_millis(1),
            seq: 0,
            bytes: 1000,
            retx: false,
            in_flight: 1,
        });
        agg.on_ack(&ack(10, 0, 1, 1, 30, true));
        agg.on_ack(&ack(12, 5, 1, 1, 50, true)); // above cum_ack: sacked
        let seqs = [2u64, 3];
        agg.on_loss(&LossEvent {
            now: SimTime::from_millis(15),
            seqs: &seqs,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 2,
            mss: 1000,
        });
        assert!(agg.has_events());
        let rep = agg.take(SimTime::from_millis(20));
        assert_eq!(rep.span(), SimDuration::from_millis(20));
        assert_eq!((rep.sent_pkts, rep.sent_bytes), (1, 1000));
        assert_eq!((rep.acked_pkts, rep.acked_bytes), (2, 2000));
        assert_eq!((rep.sacked_pkts, rep.sacked_bytes), (1, 1000));
        assert_eq!((rep.lost_pkts, rep.lost_bytes), (2, 2000));
        assert_eq!(rep.loss_events, 1);
        assert!(rep.new_loss_episode);
        assert_eq!(rep.timeouts, 0);
        assert_eq!(rep.rtt_min, Some(SimDuration::from_millis(30)));
        assert_eq!(rep.rtt_max, Some(SimDuration::from_millis(50)));
        assert_eq!(rep.mean_rtt(), SimDuration::from_millis(40));
        assert!((rep.loss_rate() - 0.5).abs() < 1e-12);
        assert!(!agg.has_events(), "take resets the interval");
    }

    #[test]
    fn delivery_rate_matches_monitor_formula() {
        // 3 packets of 1000 B acked, first arrival at 10 ms, last at 30 ms:
        // spaced rate = 2 × 8000 bits / 20 ms = 800 kbit/s; the interval
        // average over 100 ms is 240 kbit/s and caps it.
        let mut agg = ReportAggregator::default();
        agg.begin(SimTime::ZERO);
        agg.on_ack(&ack(10, 0, 1, 1, 30, true));
        agg.on_ack(&ack(20, 1, 2, 1, 30, true));
        agg.on_ack(&ack(30, 2, 3, 1, 30, true));
        let rep = agg.take(SimTime::from_millis(100));
        assert!((rep.delivery_rate_bps() - 240_000.0).abs() < 1.0);
        // Over a 27 ms interval (5..32 ms) the whole-interval average
        // (24 000 bits / 27 ms ≈ 889 kbit/s) exceeds the spaced estimate
        // (800 kbit/s), so the spaced estimate wins.
        let mut agg = ReportAggregator::default();
        agg.begin(SimTime::from_millis(5));
        agg.on_ack(&ack(10, 0, 1, 1, 30, true));
        agg.on_ack(&ack(20, 1, 2, 1, 30, true));
        agg.on_ack(&ack(30, 2, 3, 1, 30, true));
        let rep = agg.take(SimTime::from_millis(32));
        assert!((rep.delivery_rate_bps() - 800_000.0).abs() < 1.0);
    }

    #[test]
    fn rtt_slope_needs_two_samples() {
        let mut agg = ReportAggregator::default();
        agg.begin(SimTime::ZERO);
        agg.on_ack(&ack(10, 0, 1, 1, 30, true));
        let rep = agg.take(SimTime::from_millis(20));
        assert_eq!(rep.rtt_slope(), None);
        let mut agg = ReportAggregator::default();
        agg.begin(SimTime::ZERO);
        agg.on_ack(&ack(10, 0, 1, 1, 30, true));
        agg.on_ack(&ack(110, 1, 2, 1, 40, true));
        let rep = agg.take(SimTime::from_millis(120));
        // +10 ms of RTT over 100 ms of arrival time: slope 0.1 s/s.
        let slope = rep.rtt_slope().expect("two samples");
        assert!((slope - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_reports_defaults() {
        let mut agg = ReportAggregator::default();
        agg.begin(SimTime::from_millis(5));
        let rep = agg.take(SimTime::from_millis(35));
        assert_eq!(rep.start, SimTime::from_millis(5));
        assert_eq!(rep.end, SimTime::from_millis(35));
        assert_eq!(rep.acked_pkts, 0);
        assert_eq!(rep.delivery_rate_bps(), 0.0);
        assert_eq!(rep.loss_rate(), 0.0);
        // With no samples, mean_rtt falls back to the (caller-stamped)
        // engine SRTT — zero here because nothing stamped it.
        assert_eq!(rep.mean_rtt(), SimDuration::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One scripted event: (kind, magnitude). Kinds: 0 = sent, 1 = ack
    /// (cumulative), 2 = ack (selective), 3 = loss detected, 4 = timeout.
    fn apply(agg: &mut ReportAggregator, op: (u8, u8), at: SimTime) {
        let (kind, mag) = op;
        let n = (mag % 4) as u32 + 1;
        match kind % 5 {
            0 => agg.on_sent(&SentEvent {
                now: at,
                seq: 0,
                bytes: 1200,
                retx: mag % 3 == 0,
                in_flight: 1,
            }),
            1 | 2 => {
                let rtt = SimDuration::from_millis(20 + mag as u64);
                agg.on_ack(&AckEvent {
                    now: at,
                    // kind 2 acks above cum_ack (selective).
                    seq: if kind % 5 == 2 { 100 } else { 0 },
                    rtt,
                    sampled: mag % 4 != 0,
                    srtt: rtt,
                    min_rtt: rtt,
                    max_rtt: rtt,
                    recv_at: at,
                    probe_train: None,
                    of_retx: false,
                    cum_ack: 10,
                    newly_acked: n,
                    in_flight: 3,
                    mss: 1200,
                    in_recovery: false,
                });
            }
            _ => {
                let seqs: Vec<u64> = (0..n as u64).collect();
                agg.on_loss(&LossEvent {
                    now: at,
                    seqs: &seqs,
                    kind: if kind % 5 == 4 {
                        LossKind::Timeout
                    } else {
                        LossKind::Detected
                    },
                    new_episode: mag % 2 == 0,
                    in_flight: 1,
                    mss: 1200,
                });
            }
        }
    }

    proptest! {
        /// Lossless aggregation: for an arbitrary event sequence and an
        /// arbitrary partition of it into report intervals, the summed
        /// per-report fields equal the one-shot totals — bytes, packets,
        /// loss counters, RTT bounds and sums, and interval span.
        #[test]
        fn partitioned_reports_sum_to_one_shot_totals(
            script in proptest::collection::vec((0u8..5, 0u8..=255), 1..200),
            cuts in proptest::collection::vec(0u8..2, 1..200),
        ) {
            // One-shot: everything in a single interval.
            let mut whole = ReportAggregator::default();
            whole.begin(SimTime::ZERO);
            for (i, &op) in script.iter().enumerate() {
                apply(&mut whole, op, SimTime::from_millis(i as u64 + 1));
            }
            let end = SimTime::from_millis(script.len() as u64 + 1);
            let total = whole.take(end);

            // Partitioned: cut after event i whenever cuts[i % len].
            let mut part = ReportAggregator::default();
            part.begin(SimTime::ZERO);
            let mut reports = Vec::new();
            for (i, &op) in script.iter().enumerate() {
                let at = SimTime::from_millis(i as u64 + 1);
                apply(&mut part, op, at);
                if cuts[i % cuts.len()] == 1 {
                    reports.push(part.take(at));
                }
            }
            reports.push(part.take(end));

            // Reports tile the timeline.
            prop_assert_eq!(reports[0].start, SimTime::ZERO);
            prop_assert_eq!(reports.last().unwrap().end, end);
            for w in reports.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            let span_sum: u64 = reports.iter().map(|r| r.span().as_nanos()).sum();
            prop_assert_eq!(span_sum, total.span().as_nanos());

            // Summed counters equal the one-shot totals.
            macro_rules! sums {
                ($($f:ident: $t:ty),+) => {$(
                    let s: $t = reports.iter().map(|r| r.$f).sum();
                    prop_assert_eq!(s, total.$f, stringify!($f));
                )+};
            }
            sums!(sent_pkts: u64, sent_bytes: u64, retx_pkts: u64,
                  acked_pkts: u64, acked_bytes: u64,
                  sacked_pkts: u64, sacked_bytes: u64,
                  lost_pkts: u64, lost_bytes: u64,
                  rtt_sum_ns: u128, rtt_samples: u64);
            let loss_events: u32 = reports.iter().map(|r| r.loss_events).sum();
            prop_assert_eq!(loss_events, total.loss_events);
            let timeouts: u32 = reports.iter().map(|r| r.timeouts).sum();
            prop_assert_eq!(timeouts, total.timeouts);
            prop_assert_eq!(
                reports.iter().any(|r| r.new_loss_episode),
                total.new_loss_episode
            );

            // RTT bounds: min of mins, max of maxes.
            let min = reports.iter().filter_map(|r| r.rtt_min).min();
            let max = reports.iter().filter_map(|r| r.rtt_max).max();
            prop_assert_eq!(min, total.rtt_min);
            prop_assert_eq!(max, total.rtt_max);
            // First/last samples survive the partition.
            let first = reports.iter().find_map(|r| r.first_rtt);
            let last = reports.iter().rev().find_map(|r| r.last_rtt);
            prop_assert_eq!(first, total.first_rtt);
            prop_assert_eq!(last, total.last_rtt);
        }
    }
}
