//! The unified congestion-control API.
//!
//! The paper's architectural claim (§3) is that control intelligence should
//! be a pluggable module over a dumb sending engine. This module is that
//! plug: **one** trait — [`CongestionControl`] — with a uniform event
//! vocabulary (`on_start`, `on_sent`, `on_ack`, `on_loss`, `on_timer`) and
//! an [`Effects`] sink through which an algorithm requests a pacing rate, a
//! congestion window, *or both*.
//!
//! This replaces the seed design's two disjoint traits (`RateController`
//! for PCC/SABUL/PCP over a paced engine, `WindowCc` for the TCP variants
//! over an ack-clocked engine), which locked every algorithm to one engine
//! and one datapath. With a single vocabulary:
//!
//! * rate-based algorithms (PCC, SABUL, PCP) call [`Ctx::set_rate`];
//! * window-based algorithms (the TCPs) call [`Ctx::set_cwnd`];
//! * hybrid algorithms call both;
//!
//! and the one engine ([`crate::sender::CcSender`] in simulation,
//! `pcc-udp`'s sender on real sockets) enforces whichever combination the
//! algorithm requested. The same boxed algorithm object runs unchanged on
//! either datapath.
//!
//! The reference *hybrid* implementation is `pcc-bbr`'s `Bbr` (registered
//! as `bbr`): a BBR-style model-based controller whose every control
//! decision sets `set_rate(pacing_gain · btl_bw)` *and*
//! `set_cwnd(cwnd_gain · BDP)`, so both machineries — pacing and window
//! clocking — run simultaneously for the whole flow. The `-paced` TCP
//! wrappers (`pcc-tcp`'s `PacedWindowed`) are the thin end of the same
//! path. Engines hosting this trait must enforce *both* effects when both
//! are set: a closed window blocks transmission even when the pacing gap
//! has elapsed, and vice versa (asserted for both datapaths by the root
//! conformance suite's `hybrid_enforcement` tests).

use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::report::MeasurementReport;

/// Everything an algorithm sees when an ACK arrives.
#[derive(Clone, Copy, Debug)]
pub struct AckEvent {
    /// Current time.
    pub now: SimTime,
    /// The acknowledged sequence.
    pub seq: u64,
    /// RTT attributed to this ACK: the exact sample when one was taken
    /// (see [`AckEvent::sampled`]), otherwise the smoothed RTT.
    pub rtt: SimDuration,
    /// True when [`AckEvent::rtt`] is an exact per-packet sample (false for
    /// e.g. ACKs of retransmissions, where the sample would be ambiguous).
    pub sampled: bool,
    /// Smoothed RTT.
    pub srtt: SimDuration,
    /// Minimum RTT observed (propagation estimate).
    pub min_rtt: SimDuration,
    /// Maximum RTT observed.
    pub max_rtt: SimDuration,
    /// Receiver-side arrival timestamp (for dispersion probing).
    pub recv_at: SimTime,
    /// Probe-train tag echoed by the receiver, if any.
    pub probe_train: Option<u32>,
    /// The acked transmission was a retransmission.
    pub of_retx: bool,
    /// Receiver's cumulative ack point.
    pub cum_ack: u64,
    /// Packets newly acknowledged by this ACK (0 for pure duplicates).
    pub newly_acked: u32,
    /// Packets currently in flight.
    pub in_flight: u64,
    /// Packet size in bytes.
    pub mss: u32,
    /// True while the engine is inside a loss-recovery episode. Window
    /// algorithms conventionally freeze growth here; rate algorithms are
    /// free to ignore it.
    pub in_recovery: bool,
}

/// A data packet left the sender.
#[derive(Clone, Copy, Debug)]
pub struct SentEvent {
    /// Current time.
    pub now: SimTime,
    /// Sequence transmitted.
    pub seq: u64,
    /// Bytes on the wire.
    pub bytes: u32,
    /// This was a retransmission.
    pub retx: bool,
    /// Packets in flight after this send.
    pub in_flight: u64,
}

/// Why a batch of sequences was declared lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Reordering-threshold / deadline detection (fast-retransmit-style).
    Detected,
    /// A retransmission timeout fired and all in-flight data was marked
    /// lost.
    Timeout,
}

/// Sequences newly declared lost.
#[derive(Clone, Copy, Debug)]
pub struct LossEvent<'a> {
    /// Current time.
    pub now: SimTime,
    /// The sequences (packet granularity).
    pub seqs: &'a [u64],
    /// Detection mechanism.
    pub kind: LossKind,
    /// True when this detection *begins* a recovery episode (the engine
    /// suppresses the flag for further detections until the episode ends).
    /// Window algorithms react once per episode; rate algorithms usually
    /// count every loss.
    pub new_episode: bool,
    /// Packets in flight after removing the lost ones.
    pub in_flight: u64,
    /// Packet size in bytes.
    pub mss: u32,
}

/// Which transmission machinery the engine runs for a flow.
///
/// Normally implied by what the algorithm set in `on_start` (rate →
/// [`CcMode::Rate`], cwnd → [`CcMode::Window`], both →
/// [`CcMode::Hybrid`]); an algorithm can *switch* modes mid-flow with
/// [`Ctx::set_mode`] — e.g. rate-based startup followed by window-based
/// steady state. On a switch the engine derives a sane operating point for
/// the new mode from the old one (rate × SRTT → cwnd and vice versa)
/// unless the algorithm set one explicitly in the same callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcMode {
    /// Pure pacing: the engine clocks transmissions off the requested rate.
    Rate,
    /// Pure window clocking: ack-clocked with TSO burstiness and RTO
    /// machinery.
    Window,
    /// Both machineries run; a closed window blocks transmission even when
    /// the pacing gap has elapsed, and vice versa.
    Hybrid,
}

/// How long one measurement interval lasts in batched mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReportInterval {
    /// A multiple of the smoothed RTT, re-evaluated at each report
    /// boundary (the adaptive default: 1 RTT).
    Rtts(f64),
    /// A fixed wall-clock interval.
    Fixed(SimDuration),
}

/// How the engine delivers measurement feedback to an algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReportMode {
    /// Legacy/compatibility path: every ACK and loss event is delivered
    /// individually through `on_ack` / `on_loss`.
    PerAck,
    /// Off-path control plane: the engine aggregates events locally and
    /// delivers one [`MeasurementReport`] per interval through
    /// [`CongestionControl::on_report`]. `on_ack` / `on_loss` are *not*
    /// called.
    Batched(ReportInterval),
}

impl ReportMode {
    /// The batched default: one report per smoothed RTT.
    pub fn batched_rtt() -> Self {
        ReportMode::Batched(ReportInterval::Rtts(1.0))
    }
}

/// Everything an algorithm requested during one callback, drained by the
/// hosting engine.
#[derive(Debug, Default)]
pub struct Decisions {
    /// Pacing rate (bits/sec), if requested.
    pub rate: Option<f64>,
    /// Congestion window (packets), if requested.
    pub cwnd: Option<f64>,
    /// Engine-mode switch, if requested.
    pub mode: Option<CcMode>,
    /// One-shot override for the next report interval, if requested.
    pub report_in: Option<SimDuration>,
    /// Timers to arm; each token is redelivered through
    /// [`CongestionControl::on_timer`].
    pub timers: Vec<(SimTime, u64)>,
}

/// Control decisions an algorithm requests during a callback.
///
/// The engine applies whatever subset was set: a pacing rate, a congestion
/// window, or both — plus mode switches and report-cadence overrides.
/// Timers are redelivered through [`CongestionControl::on_timer`] with
/// their token.
#[derive(Debug, Default)]
pub struct Effects {
    new_rate: Option<f64>,
    new_cwnd: Option<f64>,
    new_mode: Option<CcMode>,
    report_in: Option<SimDuration>,
    timers: Vec<(SimTime, u64)>,
}

impl Effects {
    /// Take everything requested so far. Used by engines hosting an
    /// algorithm outside the simulator (e.g. the real-network UDP sender)
    /// as well as by [`crate::sender::CcSender`].
    pub fn drain(&mut self) -> Decisions {
        Decisions {
            rate: self.new_rate.take(),
            cwnd: self.new_cwnd.take(),
            mode: self.new_mode.take(),
            report_in: self.report_in.take(),
            timers: std::mem::take(&mut self.timers),
        }
    }

    /// True if nothing was requested.
    pub fn is_empty(&self) -> bool {
        self.new_rate.is_none()
            && self.new_cwnd.is_none()
            && self.new_mode.is_none()
            && self.report_in.is_none()
            && self.timers.is_empty()
    }
}

/// Algorithm-side view during a callback: clock, RNG, and effect sink.
pub struct Ctx<'a> {
    /// Current time.
    pub now: SimTime,
    /// Deterministic per-flow random stream.
    pub rng: &'a mut SimRng,
    effects: &'a mut Effects,
}

impl<'a> Ctx<'a> {
    /// Build a context (also used directly by algorithm unit tests).
    pub fn new(now: SimTime, rng: &'a mut SimRng, effects: &'a mut Effects) -> Self {
        Ctx { now, rng, effects }
    }

    /// Request a pacing rate (bits/sec), effective immediately. Floored at
    /// 1 bps — an engine never stalls on a zero or negative rate.
    pub fn set_rate(&mut self, bps: f64) {
        self.effects.new_rate = Some(if bps.is_finite() { bps.max(1.0) } else { 1.0 });
    }

    /// Request a congestion window (packets), effective immediately.
    /// Floored at one packet.
    pub fn set_cwnd(&mut self, pkts: f64) {
        self.effects.new_cwnd = Some(if pkts.is_finite() { pkts.max(1.0) } else { 1.0 });
    }

    /// Arm an algorithm timer; `token` is redelivered in
    /// [`CongestionControl::on_timer`].
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.effects.timers.push((at, token));
    }

    /// Switch the engine's transmission machinery mid-flow (the
    /// mode-switch seam: rate-based startup, window-based steady state).
    /// If the algorithm does not also set the new mode's operating point
    /// in the same callback, the engine derives one from the current
    /// operating point (rate × SRTT → cwnd and vice versa).
    pub fn set_mode(&mut self, mode: CcMode) {
        self.effects.new_mode = Some(mode);
    }

    /// One-shot override of the *next* report interval (batched mode
    /// only): the next [`MeasurementReport`] is emitted `d` after now.
    /// Lets interval-structured algorithms (PCC) align report boundaries
    /// with their own monitor intervals.
    pub fn set_report_interval(&mut self, d: SimDuration) {
        self.effects.report_in = Some(d);
    }
}

/// A congestion-control algorithm: the single plug-in point for every
/// protocol in the evaluation, rate-based, window-based, or hybrid.
///
/// Lifecycle: the engine calls [`CongestionControl::on_start`] once, then
/// forwards packet events (`on_sent` / `on_ack` / `on_loss`) and timer
/// expirations (`on_timer`). During any callback the algorithm may request
/// effects through [`Ctx`]; the engine applies them when the callback
/// returns.
pub trait CongestionControl: Send {
    /// Algorithm name (for reports and the registry).
    fn name(&self) -> &'static str;

    /// Called once at flow start. The algorithm must request its initial
    /// operating point here: a rate ([`Ctx::set_rate`]), a window
    /// ([`Ctx::set_cwnd`]), or both. What it sets determines which
    /// machinery the engine runs (pacing, window clocking, or both).
    fn on_start(&mut self, ctx: &mut Ctx);

    /// A data packet left the sender.
    fn on_sent(&mut self, ev: &SentEvent, ctx: &mut Ctx) {
        let _ = (ev, ctx);
    }

    /// An ACK arrived.
    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx);

    /// Sequences were newly declared lost.
    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx);

    /// A previously armed algorithm timer fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let _ = (token, ctx);
    }

    /// Which feedback path this algorithm wants. [`ReportMode::PerAck`]
    /// (the default) delivers every event through `on_ack` / `on_loss`;
    /// [`ReportMode::Batched`] makes the engine aggregate locally and
    /// deliver one [`MeasurementReport`] per interval through
    /// [`CongestionControl::on_report`] instead. Engines may override the
    /// preference per flow (e.g. a host driving many flows batches all of
    /// them).
    fn report_mode(&self) -> ReportMode {
        ReportMode::PerAck
    }

    /// One aggregated measurement interval completed (batched mode). The
    /// default implementation ignores it; algorithms opting into
    /// [`ReportMode::Batched`] — or hosted behind an engine that forces
    /// batching — must implement it.
    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut Ctx) {
        let _ = (rep, ctx);
    }

    /// The engine detected recovery from a connectivity outage: progress
    /// resumed after deep RTO backoff. The engine has already re-seeded
    /// its RTT estimator from the first post-repair sample; the algorithm
    /// should discard measurement state accumulated against the dead path
    /// (e.g. PCC resets its monitor machinery) and may set a fresh
    /// operating point. Default: no-op — any rate/cwnd the algorithm does
    /// not reset is re-derived by the engine from the surviving operating
    /// point and the fresh RTT.
    fn on_resume(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }

    /// Probe-train tag to stamp on the next outgoing data packet, if the
    /// algorithm is currently probing (dispersion-based designs like PCP).
    /// The receiver echoes the tag in its ACKs.
    fn probe_tag(&self) -> Option<u32> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_floor_rate_and_cwnd() {
        let mut fx = Effects::default();
        let mut rng = SimRng::new(1);
        let mut ctx = Ctx::new(SimTime::ZERO, &mut rng, &mut fx);
        ctx.set_rate(-5.0);
        ctx.set_cwnd(0.0);
        let d = fx.drain();
        assert_eq!(d.rate, Some(1.0));
        assert_eq!(d.cwnd, Some(1.0));
    }

    #[test]
    fn effects_reject_non_finite() {
        let mut fx = Effects::default();
        let mut rng = SimRng::new(1);
        let mut ctx = Ctx::new(SimTime::ZERO, &mut rng, &mut fx);
        ctx.set_rate(f64::NAN);
        ctx.set_cwnd(f64::INFINITY);
        let d = fx.drain();
        assert_eq!(d.rate, Some(1.0));
        assert_eq!(d.cwnd, Some(1.0));
    }

    #[test]
    fn effects_collect_timers_in_order() {
        let mut fx = Effects::default();
        let mut rng = SimRng::new(1);
        let mut ctx = Ctx::new(SimTime::ZERO, &mut rng, &mut fx);
        ctx.set_timer(SimTime::from_millis(5), 7);
        ctx.set_timer(SimTime::from_millis(1), 9);
        let d = fx.drain();
        assert_eq!(
            d.timers,
            vec![(SimTime::from_millis(5), 7), (SimTime::from_millis(1), 9)]
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn effects_carry_mode_and_report_interval() {
        let mut fx = Effects::default();
        let mut rng = SimRng::new(1);
        let mut ctx = Ctx::new(SimTime::ZERO, &mut rng, &mut fx);
        ctx.set_mode(CcMode::Window);
        ctx.set_report_interval(SimDuration::from_millis(30));
        assert!(!fx.is_empty());
        let d = fx.drain();
        assert_eq!(d.mode, Some(CcMode::Window));
        assert_eq!(d.report_in, Some(SimDuration::from_millis(30)));
        assert!(fx.is_empty());
    }
}
