//! Rate-based paced sender.
//!
//! The engine PCC runs on (§3: "the Sending Module sends packets ... at a
//! certain sending rate instructed by the Performance-oriented Rate Control
//! Module"), also reused by the SABUL- and PCP-style baselines. The sender
//! paces packets at a controller-chosen rate, provides reliability
//! (SACK-scoreboard loss detection + retransmission), and forwards every
//! packet event — sent, acked, lost — to the [`RateController`], which is
//! where all control intelligence lives.

use std::collections::VecDeque;

use pcc_simnet::endpoint::{Endpoint, EndpointCtx};
use pcc_simnet::packet::Packet;
use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::flow::TransportConfig;
use crate::rtt::RttEstimator;
use crate::sack::Scoreboard;

/// Ack event forwarded to the controller.
#[derive(Clone, Copy, Debug)]
pub struct RateAck {
    /// Current time.
    pub now: SimTime,
    /// The acknowledged sequence.
    pub seq: u64,
    /// Exact RTT of the acknowledged transmission.
    pub rtt: SimDuration,
    /// Receiver-side arrival timestamp (for dispersion probing).
    pub recv_at: SimTime,
    /// Probe-train tag echoed by the receiver, if any.
    pub probe_train: Option<u32>,
    /// The acked transmission was a retransmission.
    pub of_retx: bool,
    /// Receiver's cumulative ack point.
    pub cum_ack: u64,
}

/// Effects a controller requests during a callback.
#[derive(Debug, Default)]
pub struct CtrlEffects {
    new_rate: Option<f64>,
    timers: Vec<(SimTime, u64)>,
}

impl CtrlEffects {
    /// Take the requested rate change and timers (used by engines hosting a
    /// controller outside the simulator, e.g. the real-network UDP sender).
    pub fn drain(&mut self) -> (Option<f64>, Vec<(SimTime, u64)>) {
        (self.new_rate.take(), std::mem::take(&mut self.timers))
    }
}

/// Controller-side view during a callback: clock, RNG, and effect sink.
pub struct CtrlCtx<'a> {
    /// Current time.
    pub now: SimTime,
    /// Deterministic per-flow random stream.
    pub rng: &'a mut SimRng,
    effects: &'a mut CtrlEffects,
}

impl<'a> CtrlCtx<'a> {
    /// Build a context (also used directly by controller unit tests).
    pub fn new(now: SimTime, rng: &'a mut SimRng, effects: &'a mut CtrlEffects) -> Self {
        CtrlCtx { now, rng, effects }
    }

    /// Change the pacing rate (bits/sec), effective immediately.
    pub fn set_rate(&mut self, bps: f64) {
        self.effects.new_rate = Some(bps.max(1.0));
    }

    /// Arm a controller timer; `token` is redelivered in
    /// [`RateController::on_timer`].
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.effects.timers.push((at, token));
    }
}

/// A rate-control algorithm driving a paced sender.
pub trait RateController: Send {
    /// Controller name (for reports).
    fn name(&self) -> &'static str;

    /// Called once at flow start; returns the initial rate in bits/sec.
    fn on_start(&mut self, ctx: &mut CtrlCtx) -> f64;

    /// A data packet left the sender.
    fn on_sent(&mut self, seq: u64, bytes: u32, retx: bool, ctx: &mut CtrlCtx);

    /// An ACK arrived.
    fn on_ack(&mut self, ack: &RateAck, ctx: &mut CtrlCtx);

    /// Sequences newly declared lost.
    fn on_loss(&mut self, seqs: &[u64], ctx: &mut CtrlCtx);

    /// A previously armed controller timer fired.
    fn on_timer(&mut self, token: u64, ctx: &mut CtrlCtx);

    /// Probe-train tag to stamp on the next outgoing data packet, if the
    /// controller is currently probing (dispersion-based controllers like
    /// PCP). The receiver echoes the tag in its ACKs.
    fn probe_tag(&self) -> Option<u32> {
        None
    }
}

/// Engine knobs for the paced sender.
#[derive(Clone, Copy, Debug)]
pub struct RateSenderConfig {
    /// Transport basics (MSS, flow size).
    pub transport: TransportConfig,
    /// Hard cap on packets in flight (memory guard; generously above any
    /// BDP in the evaluation).
    pub max_in_flight: u64,
    /// Minimum RTO used for timeout-based loss declaration. Rate-based
    /// user-space transports are not bound by TCP's conservative 200 ms
    /// convention — PCC's monitor resolves packet fates at MI+RTT
    /// granularity (§3.1), so tail losses are declared quickly.
    pub min_rto: SimDuration,
}

impl Default for RateSenderConfig {
    fn default() -> Self {
        RateSenderConfig {
            transport: TransportConfig::default(),
            max_in_flight: 65_536,
            min_rto: SimDuration::from_millis(10),
        }
    }
}

const TOKEN_KIND_SHIFT: u64 = 56;
const TOKEN_PACE: u64 = 1 << TOKEN_KIND_SHIFT;
const TOKEN_SCAN: u64 = 2 << TOKEN_KIND_SHIFT;
/// Controller tokens are passed through with this tag.
const TOKEN_CTRL: u64 = 3 << TOKEN_KIND_SHIFT;
const TOKEN_GEN_MASK: u64 = (1 << TOKEN_KIND_SHIFT) - 1;

/// Rate-based sender endpoint: pacing + reliability around a
/// [`RateController`].
pub struct RateSender {
    cfg: RateSenderConfig,
    ctrl: Box<dyn RateController>,
    sb: Scoreboard,
    rtt: RttEstimator,
    retx_queue: VecDeque<u64>,
    rate_bps: f64,
    pace_gen: u64,
    pace_armed: bool,
    scan_armed: bool,
    finished: bool,
    effects: CtrlEffects,
}

impl RateSender {
    /// Build a sender around a rate controller.
    pub fn new(cfg: RateSenderConfig, ctrl: Box<dyn RateController>) -> Self {
        RateSender {
            cfg,
            ctrl,
            sb: Scoreboard::new(),
            rtt: RttEstimator::new(cfg.min_rto, SimDuration::from_secs(120)),
            retx_queue: VecDeque::new(),
            rate_bps: 1.0,
            pace_gen: 0,
            pace_armed: false,
            scan_armed: false,
            finished: false,
            effects: CtrlEffects::default(),
        }
    }

    /// The controller's name.
    pub fn controller_name(&self) -> &'static str {
        self.ctrl.name()
    }

    /// Current pacing rate in bits/sec.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn mss(&self) -> u32 {
        self.cfg.transport.mss
    }

    fn has_work(&self) -> bool {
        !self.retx_queue.is_empty()
            || !self
                .cfg
                .transport
                .size
                .exhausted(self.sb.next_seq(), self.mss())
    }

    /// Apply rate changes / timers the controller requested.
    fn apply_effects(&mut self, ctx: &mut EndpointCtx) {
        if let Some(rate) = self.effects.new_rate.take() {
            if rate != self.rate_bps {
                self.rate_bps = rate;
                ctx.record_rate(rate);
            }
        }
        for (at, token) in self.effects.timers.drain(..) {
            debug_assert!(token <= TOKEN_GEN_MASK, "controller token too large");
            ctx.set_timer(at, TOKEN_CTRL | (token & TOKEN_GEN_MASK));
        }
    }

    fn with_ctrl(
        &mut self,
        ctx: &mut EndpointCtx,
        f: impl FnOnce(&mut dyn RateController, &mut CtrlCtx),
    ) {
        let mut effects = std::mem::take(&mut self.effects);
        {
            let mut cc = CtrlCtx::new(ctx.now, ctx.rng(), &mut effects);
            f(self.ctrl.as_mut(), &mut cc);
        }
        self.effects = effects;
        self.apply_effects(ctx);
    }

    fn arm_pacer(&mut self, ctx: &mut EndpointCtx, at: SimTime) {
        self.pace_gen += 1;
        self.pace_armed = true;
        ctx.set_timer(at, TOKEN_PACE | (self.pace_gen & TOKEN_GEN_MASK));
    }

    fn pace_gap(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.mss() as f64 * 8.0 / self.rate_bps.max(1.0))
    }

    fn on_pace_tick(&mut self, ctx: &mut EndpointCtx) {
        self.pace_armed = false;
        if self.finished {
            return;
        }
        if self.sb.in_flight() >= self.cfg.max_in_flight {
            // Flow-window blocked; re-check one pace gap later.
            self.arm_pacer(ctx, ctx.now + self.pace_gap());
            return;
        }
        let sent = self.send_one(ctx);
        if sent && self.has_work() {
            self.arm_pacer(ctx, ctx.now + self.pace_gap());
        }
        // If idle (nothing to send), the pacer re-arms when work arrives
        // (ack opens window / retransmission queued).
    }

    fn send_one(&mut self, ctx: &mut EndpointCtx) -> bool {
        while let Some(&seq) = self.retx_queue.front() {
            if !self.sb.is_lost(seq) {
                self.retx_queue.pop_front();
                continue;
            }
            self.retx_queue.pop_front();
            self.sb.on_send(seq, ctx.now, true);
            ctx.send_data(seq, self.mss(), true);
            let mss = self.mss();
            self.with_ctrl(ctx, |c, cc| c.on_sent(seq, mss, true, cc));
            return true;
        }
        let next = self.sb.next_seq();
        if self.cfg.transport.size.exhausted(next, self.mss()) {
            return false;
        }
        self.sb.on_send(next, ctx.now, false);
        match self.ctrl.probe_tag() {
            Some(train) => ctx.send_probe(next, self.mss(), train),
            None => ctx.send_data(next, self.mss(), false),
        }
        let mss = self.mss();
        self.with_ctrl(ctx, |c, cc| c.on_sent(next, mss, false, cc));
        true
    }

    fn arm_scan(&mut self, ctx: &mut EndpointCtx) {
        if self.scan_armed || self.finished {
            return;
        }
        self.scan_armed = true;
        let interval = self
            .rtt
            .srtt_or(SimDuration::from_millis(100))
            .max(SimDuration::from_millis(10));
        ctx.set_timer(ctx.now + interval, TOKEN_SCAN);
    }

    fn scan_losses(&mut self, ctx: &mut EndpointCtx) {
        let rto = self.rtt.rto();
        let lost = self.sb.detect_losses(ctx.now, rto);
        if lost.is_empty() {
            return;
        }
        ctx.record_loss(lost.len() as u64);
        let was_idle = !self.pace_armed;
        self.retx_queue.extend(lost.iter().copied());
        self.with_ctrl(ctx, |c, cc| c.on_loss(&lost, cc));
        if was_idle && !self.finished {
            self.arm_pacer(ctx, ctx.now);
        }
    }

    fn check_finished(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        if let Some(total) = self.cfg.transport.size.packets(self.mss()) {
            if self.sb.all_acked_below(total) {
                self.finished = true;
                ctx.finish();
            }
        }
    }
}

impl Endpoint for RateSender {
    fn start(&mut self, ctx: &mut EndpointCtx) {
        let mut effects = std::mem::take(&mut self.effects);
        let initial = {
            let mut cc = CtrlCtx::new(ctx.now, ctx.rng(), &mut effects);
            self.ctrl.on_start(&mut cc)
        };
        self.effects = effects;
        self.rate_bps = initial.max(1.0);
        ctx.record_rate(self.rate_bps);
        self.apply_effects(ctx);
        self.arm_pacer(ctx, ctx.now);
        self.arm_scan(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        let Some(info) = pkt.as_ack() else {
            debug_assert!(false, "sender got non-ACK");
            return;
        };
        let out = self.sb.on_ack(info, ctx.now);
        if let Some(rtt) = out.rtt {
            self.rtt.on_sample(rtt);
            ctx.record_rtt(rtt);
            let ack = RateAck {
                now: ctx.now,
                seq: info.acked_seq,
                rtt,
                recv_at: info.recv_at,
                probe_train: info.probe_train,
                of_retx: info.of_retx,
                cum_ack: info.cum_ack,
            };
            self.with_ctrl(ctx, |c, cc| c.on_ack(&ack, cc));
        }
        self.scan_losses(ctx);
        self.check_finished(ctx);
        // Wake the pacer if it went idle and there is work again.
        if !self.finished && !self.pace_armed && self.has_work() {
            self.arm_pacer(ctx, ctx.now);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        let kind = token & !TOKEN_GEN_MASK;
        let gen = token & TOKEN_GEN_MASK;
        match kind {
            TOKEN_PACE => {
                if gen == (self.pace_gen & TOKEN_GEN_MASK) {
                    self.on_pace_tick(ctx);
                }
            }
            TOKEN_SCAN => {
                self.scan_armed = false;
                self.scan_losses(ctx);
                self.arm_scan(ctx);
            }
            TOKEN_CTRL => {
                self.with_ctrl(ctx, |c, cc| c.on_timer(gen, cc));
                if !self.finished && !self.pace_armed && self.has_work() {
                    self.arm_pacer(ctx, ctx.now);
                }
            }
            _ => debug_assert!(false, "unknown timer token"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSize;
    use crate::receiver::SackReceiver;
    use pcc_simnet::prelude::*;

    /// Fixed-rate controller for engine tests.
    struct FixedRate {
        bps: f64,
        acks: u64,
        losses: u64,
        sent: u64,
    }

    impl FixedRate {
        fn new(bps: f64) -> Self {
            FixedRate {
                bps,
                acks: 0,
                losses: 0,
                sent: 0,
            }
        }
    }

    impl RateController for FixedRate {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_start(&mut self, _ctx: &mut CtrlCtx) -> f64 {
            self.bps
        }
        fn on_sent(&mut self, _seq: u64, _bytes: u32, _retx: bool, _ctx: &mut CtrlCtx) {
            self.sent += 1;
        }
        fn on_ack(&mut self, _ack: &RateAck, _ctx: &mut CtrlCtx) {
            self.acks += 1;
        }
        fn on_loss(&mut self, seqs: &[u64], _ctx: &mut CtrlCtx) {
            self.losses += seqs.len() as u64;
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut CtrlCtx) {}
    }

    fn run_fixed(
        ctrl_bps: f64,
        link_mbps: f64,
        loss: f64,
        secs: u64,
        size: FlowSize,
        seed: u64,
    ) -> (SimReport, FlowId) {
        let mut net = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed,
        });
        let db = Dumbbell::new(&mut net, BottleneckSpec::new(link_mbps * 1e6, 64_000).with_loss(loss));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let cfg = RateSenderConfig {
            transport: TransportConfig { mss: 1500, size },
            ..Default::default()
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(RateSender::new(cfg, Box::new(FixedRate::new(ctrl_bps)))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        (net.build().run_until(SimTime::from_secs(secs)), flow)
    }

    #[test]
    fn paces_at_requested_rate() {
        let (report, flow) = run_fixed(5e6, 100.0, 0.0, 10, FlowSize::Infinite, 1);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(10));
        assert!((tput - 5.0).abs() < 0.25, "paced at 5 Mbps, got {tput}");
    }

    #[test]
    fn overdriving_pins_at_bottleneck() {
        let (report, flow) = run_fixed(50e6, 10.0, 0.0, 10, FlowSize::Infinite, 2);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(10));
        assert!((tput - 10.0).abs() < 0.5, "pinned at 10 Mbps, got {tput}");
    }

    #[test]
    fn sized_flow_completes_under_loss() {
        let (report, flow) = run_fixed(10e6, 100.0, 0.1, 30, FlowSize::kb(256), 3);
        let st = &report.flows[flow.index()];
        assert!(
            st.completed_at.is_some(),
            "reliability: 256 KB must complete despite 10% loss"
        );
        assert!(st.detected_losses > 0);
    }

    #[test]
    fn detects_losses_close_to_link_rate() {
        let (report, flow) = run_fixed(20e6, 100.0, 0.05, 10, FlowSize::Infinite, 4);
        let st = &report.flows[flow.index()];
        let detected = st.detected_losses as f64;
        let sent = st.sent_packets as f64;
        let rate = detected / sent;
        assert!(
            (rate - 0.05).abs() < 0.015,
            "detected loss fraction {rate} vs configured 0.05"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fixed(8e6, 10.0, 0.02, 5, FlowSize::Infinite, 77).0;
        let b = run_fixed(8e6, 10.0, 0.02, 5, FlowSize::Infinite, 77).0;
        assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        assert_eq!(a.flows[0].detected_losses, b.flows[0].detected_losses);
        assert_eq!(a.events_processed, b.events_processed);
    }
}
