//! The one sender engine.
//!
//! [`CcSender`] hosts any [`CongestionControl`] algorithm and enforces
//! whichever operating point the algorithm requests through its
//! [`Effects`]: a pacing rate, a congestion window, or both. This collapses the seed design's two engines (`RateSender` /
//! `WindowSender`) into one, so *any* algorithm runs on *any* datapath —
//! the paper's §3 split between dumb sending machinery and pluggable
//! control intelligence, taken to its conclusion.
//!
//! What the algorithm sets in `on_start` engages the matching machinery:
//!
//! * **rate only** (PCC, SABUL, PCP): packets are paced at the requested
//!   rate; losses are declared by a periodic SRTT-clocked scan over the
//!   SACK scoreboard (user-space transports are not bound by TCP's
//!   conservative RTO conventions, so the default loss-declaration floor
//!   is 10 ms);
//! * **cwnd only** (the TCP variants): classic ack-clocked transmission
//!   with segmentation-offload burstiness, fast-retransmit recovery
//!   episodes, and an RTO timer with exponential backoff (200 ms floor, the
//!   Linux default the paper's incast experiment depends on);
//! * **both** (paced TCP, BBR-style hybrids): paced release *gated* by the
//!   window, with the full TCP loss machinery.
//!
//! Reliability (SACK scoreboard + retransmission) is engine business in
//! every mode; algorithms only decide how fast data may leave.

use std::collections::VecDeque;

use pcc_simnet::endpoint::{Endpoint, EndpointCtx};
use pcc_simnet::packet::Packet;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::cc::{
    AckEvent, CcMode, CongestionControl, Ctx, Effects, LossEvent, LossKind, ReportInterval,
    ReportMode, SentEvent,
};
use crate::flow::TransportConfig;
use crate::report::ReportAggregator;
use crate::rtt::RttEstimator;
use crate::sack::Scoreboard;

/// Engine knobs (transport machinery, not algorithm parameters).
#[derive(Clone, Copy, Debug)]
pub struct CcSenderConfig {
    /// Transport basics (MSS, flow size).
    pub transport: TransportConfig,
    /// Hard cap on packets in flight (memory guard; generously above any
    /// BDP in the evaluation). Applies in every mode.
    pub max_in_flight: u64,
    /// Floor for the retransmission timeout. `None` picks the mode default
    /// once the algorithm has declared itself: 200 ms when it drives a
    /// congestion window (TCP's convention — the incast experiment depends
    /// on it), 10 ms for pure rate control (PCC's monitor resolves packet
    /// fates at MI+RTT granularity, §3.1).
    pub min_rto: Option<SimDuration>,
    /// Receiver-window-like clamp on the effective window, packets. Real
    /// stacks are bounded by the advertised window; 20 000 packets (30 MB)
    /// models a well-tuned host and comfortably exceeds every BDP in the
    /// paper's evaluation (max 18 MB).
    pub max_cwnd_pkts: f64,
    /// Segmentation-offload burst size in packets, for ack-clocked (cwnd,
    /// unpaced) operation. Paper-era kernels hand the NIC up to 64 KB
    /// (≈44 MSS) per TSO/GSO chunk, which leaves the host at line rate
    /// back-to-back; this burstiness — not the congestion window math — is
    /// what murders TCP on shallow buffers (Figs. 6/9, Table 1). `1`
    /// disables aggregation. Irrelevant whenever a pacing rate is set
    /// (pacing exists precisely to kill these bursts).
    pub tso_burst_pkts: u32,
    /// How long segments may wait for a burst to fill before the NIC
    /// flushes anyway (models the offload flush timer).
    pub tso_flush: SimDuration,
    /// Feedback path override. `None` (the default) honours the
    /// algorithm's own [`CongestionControl::report_mode`] preference;
    /// `Some` forces per-ACK or batched delivery regardless — e.g. a host
    /// driving many flows off-path batches all of them.
    pub report: Option<ReportMode>,
    /// Dead-time budget: if the flow makes no forward progress (no new
    /// cumulative bytes acknowledged) for this long while the RTO keeps
    /// firing, the engine aborts with [`crate::TransferError::Stalled`]
    /// semantics — the flow stops and its stall is recorded in
    /// `FlowStats::stalled` with partial-progress statistics. `None` (the
    /// simulation default) retries forever on the capped-backoff timer;
    /// real-socket datapaths should set a budget.
    pub dead_time_budget: Option<SimDuration>,
}

impl Default for CcSenderConfig {
    fn default() -> Self {
        CcSenderConfig {
            transport: TransportConfig::default(),
            max_in_flight: 65_536,
            min_rto: None,
            max_cwnd_pkts: 20_000.0,
            tso_burst_pkts: 44,
            tso_flush: SimDuration::from_millis(1),
            report: None,
            dead_time_budget: None,
        }
    }
}

/// Forward progress returning after at least this many consecutive
/// fruitless timeouts (RTO firings in windowed mode, whole-window
/// write-offs in rate mode) is treated as recovery from an outage and
/// triggers the resumption path (RTT estimator re-seeded,
/// [`CongestionControl::on_resume`], operating point re-derived). Three
/// deep means several RTOs of darkness — beyond any plausible reordering.
const RESUME_TIMEOUTS: u64 = 3;

/// Mode defaults for the RTO floor (see [`CcSenderConfig::min_rto`]).
pub const WINDOWED_MIN_RTO: SimDuration = SimDuration::from_millis(200);
/// RTO floor for pure rate control.
pub const RATE_MIN_RTO: SimDuration = SimDuration::from_millis(10);

const TOKEN_KIND_SHIFT: u64 = 56;
const TOKEN_PACE: u64 = 1 << TOKEN_KIND_SHIFT;
const TOKEN_SCAN: u64 = 2 << TOKEN_KIND_SHIFT;
/// Algorithm tokens are passed through with this tag.
const TOKEN_CTRL: u64 = 3 << TOKEN_KIND_SHIFT;
const TOKEN_RTO: u64 = 4 << TOKEN_KIND_SHIFT;
const TOKEN_TSO: u64 = 5 << TOKEN_KIND_SHIFT;
const TOKEN_REPORT: u64 = 6 << TOKEN_KIND_SHIFT;
const TOKEN_GEN_MASK: u64 = (1 << TOKEN_KIND_SHIFT) - 1;

/// The unified sender endpoint: reliability + transmission scheduling
/// around a [`CongestionControl`] algorithm.
pub struct CcSender {
    cfg: CcSenderConfig,
    cc: Box<dyn CongestionControl>,
    sb: Scoreboard,
    rtt: RttEstimator,
    retx_queue: VecDeque<u64>,
    /// Pacing rate, bits/sec; `Some` iff the algorithm drives a rate.
    rate_bps: Option<f64>,
    /// Congestion window, packets; `Some` iff the algorithm drives a cwnd.
    cwnd_pkts: Option<f64>,
    /// While `Some`, a recovery episode is active until cum-ack passes it
    /// (windowed machinery only).
    recovery_point: Option<u64>,
    rto_gen: u64,
    rto_backoff: u32,
    /// When the RTO should actually fire. Re-based on every ACK without
    /// touching the event queue: the one scheduled timer event checks this
    /// on expiry and re-arms itself if the deadline moved (lazy
    /// cancellation — the alternative schedules a fresh heap entry per
    /// ACK and lets thousands of stale ones churn through the queue).
    rto_deadline: SimTime,
    /// When the currently scheduled RTO timer event fires, if one is
    /// outstanding.
    rto_event_at: Option<SimTime>,
    pace_gen: u64,
    pace_armed: bool,
    scan_armed: bool,
    tso_gen: u64,
    tso_armed: bool,
    finished: bool,
    last_rate_report: (SimTime, f64),
    effects: Effects,
    /// Resolved feedback path (config override, else the algorithm's
    /// preference); fixed at `start()`.
    report_mode: ReportMode,
    /// Local event accumulator for batched mode.
    agg: ReportAggregator,
    report_gen: u64,
    /// One-shot report-interval override requested by the algorithm.
    requested_interval: Option<SimDuration>,
    /// When the flow last made forward progress (new cumulative bytes
    /// acknowledged); seeds the dead-time budget clock.
    last_progress_at: SimTime,
    /// Consecutive RTO firings since the last forward progress.
    timeouts_since_progress: u64,
    /// RTO floor resolved at `start()` (mode convention or explicit
    /// override); the resumption path re-seeds the RTT estimator with it.
    resolved_min_rto: SimDuration,
    /// Monotonicity tripwire for the cumulative-ack point.
    last_cum_ack: u64,
}

impl CcSender {
    /// Build a sender around a congestion-control algorithm.
    pub fn new(cfg: CcSenderConfig, cc: Box<dyn CongestionControl>) -> Self {
        CcSender {
            cfg,
            cc,
            sb: Scoreboard::new(),
            // Replaced in `start()` once the algorithm has declared its
            // mode (the RTO floor differs between modes).
            rtt: RttEstimator::new(RATE_MIN_RTO, SimDuration::from_secs(120)),
            retx_queue: VecDeque::new(),
            rate_bps: None,
            cwnd_pkts: None,
            recovery_point: None,
            rto_gen: 0,
            rto_backoff: 0,
            rto_deadline: SimTime::MAX,
            rto_event_at: None,
            pace_gen: 0,
            pace_armed: false,
            scan_armed: false,
            tso_gen: 0,
            tso_armed: false,
            finished: false,
            last_rate_report: (SimTime::MAX, 0.0),
            effects: Effects::default(),
            report_mode: ReportMode::PerAck,
            agg: ReportAggregator::default(),
            report_gen: 0,
            requested_interval: None,
            last_progress_at: SimTime::ZERO,
            timeouts_since_progress: 0,
            resolved_min_rto: RATE_MIN_RTO,
            last_cum_ack: 0,
        }
    }

    /// The algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Current pacing rate in bits/sec, if the algorithm drives one.
    pub fn rate_bps(&self) -> Option<f64> {
        self.rate_bps
    }

    /// Current congestion window in packets, if the algorithm drives one.
    pub fn cwnd_pkts(&self) -> Option<f64> {
        self.cwnd_pkts
    }

    /// Total losses the scoreboard has declared.
    pub fn losses(&self) -> u64 {
        self.sb.total_losses()
    }

    fn mss(&self) -> u32 {
        self.cfg.transport.mss
    }

    /// The algorithm drives a pacing rate.
    fn paced(&self) -> bool {
        self.rate_bps.is_some()
    }

    /// The algorithm drives a congestion window (engages TCP loss
    /// machinery: recovery episodes, RTO backoff).
    fn windowed(&self) -> bool {
        self.cwnd_pkts.is_some()
    }

    fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Events are aggregated locally and delivered as reports.
    fn batched(&self) -> bool {
        matches!(self.report_mode, ReportMode::Batched(_))
    }

    /// Effective in-flight limit right now: the memory guard, tightened by
    /// the congestion window when the algorithm drives one.
    fn flight_limit(&self) -> u64 {
        let mut limit = self.cfg.max_in_flight;
        if let Some(cwnd) = self.cwnd_pkts {
            limit = limit.min(cwnd.max(1.0).min(self.cfg.max_cwnd_pkts) as u64);
        }
        limit
    }

    /// Rate to report for windowed algorithms without an explicit pacing
    /// rate: the classic `cwnd/SRTT` estimate.
    fn derived_rate(&self) -> f64 {
        match self.rate_bps {
            Some(r) => r,
            None => {
                let srtt = self.rtt.srtt_or(SimDuration::from_millis(100));
                let cwnd = self.cwnd_pkts.unwrap_or(1.0).min(self.cfg.max_cwnd_pkts);
                cwnd * self.mss() as f64 * 8.0 / srtt.as_secs_f64().max(1e-6)
            }
        }
    }

    fn pace_gap(&self) -> SimDuration {
        let rate = self.rate_bps.unwrap_or(1.0).max(1.0);
        SimDuration::from_secs_f64(self.mss() as f64 * 8.0 / rate)
    }

    fn has_work(&self) -> bool {
        !self.retx_queue.is_empty()
            || !self
                .cfg
                .transport
                .size
                .exhausted(self.sb.next_seq(), self.mss())
    }

    /// Apply rate/cwnd changes, mode switches, and timers the algorithm
    /// requested. Order matters: the operating point is applied first so a
    /// mode switch in the same callback derives from the values just set.
    fn apply_effects(&mut self, ctx: &mut EndpointCtx) {
        let d = self.effects.drain();
        if let Some(rate) = d.rate {
            if self.rate_bps != Some(rate) {
                self.rate_bps = Some(rate);
                if self.windowed() {
                    // Hybrid algorithms update the rate every ACK; keep the
                    // throttled reporting path so samples stay bounded.
                    self.report_rate(ctx);
                } else {
                    ctx.record_rate(rate);
                }
            }
        }
        if let Some(cwnd) = d.cwnd {
            self.cwnd_pkts = Some(cwnd);
        }
        if let Some(d) = d.report_in {
            self.requested_interval = Some(d);
        }
        for (at, token) in d.timers {
            debug_assert!(token <= TOKEN_GEN_MASK, "algorithm token too large");
            ctx.set_timer(at, TOKEN_CTRL | (token & TOKEN_GEN_MASK));
        }
        if let Some(mode) = d.mode {
            self.apply_mode(mode, ctx);
        }
    }

    /// Switch transmission machinery mid-flow ([`Ctx::set_mode`]). The
    /// machinery of the departed mode is disengaged (its timers are
    /// invalidated lazily — a stale pace tick is generation-checked, the
    /// loss scan simply keeps re-arming and is harmless under window
    /// clocking); if the algorithm did not set the new mode's operating
    /// point in the same callback the engine derives one from the old
    /// point. The RTO floor keeps the convention chosen at `start()`.
    fn apply_mode(&mut self, mode: CcMode, ctx: &mut EndpointCtx) {
        let srtt = self.rtt.srtt_or(SimDuration::from_millis(100));
        let derived_cwnd = |rate: f64, mss: u32| -> f64 {
            (rate * srtt.as_secs_f64() / (mss as f64 * 8.0)).max(2.0)
        };
        match mode {
            CcMode::Rate => {
                if self.rate_bps.is_none() {
                    self.rate_bps = Some(self.derived_rate().max(1.0));
                }
                self.cwnd_pkts = None;
                self.recovery_point = None;
                ctx.record_rate(self.rate_bps.unwrap_or(1.0));
                self.arm_scan(ctx);
                self.wake_pacer(ctx);
            }
            CcMode::Window => {
                if self.cwnd_pkts.is_none() {
                    let rate = self.rate_bps.unwrap_or(1.0);
                    self.cwnd_pkts = Some(derived_cwnd(rate, self.mss()));
                }
                self.rate_bps = None;
                // Invalidate any in-flight pace tick.
                self.pace_gen += 1;
                self.pace_armed = false;
                self.report_rate(ctx);
                self.try_send(ctx);
                self.arm_rto(ctx);
            }
            CcMode::Hybrid => {
                if self.rate_bps.is_none() {
                    self.rate_bps = Some(self.derived_rate().max(1.0));
                }
                if self.cwnd_pkts.is_none() {
                    let rate = self.rate_bps.unwrap_or(1.0);
                    self.cwnd_pkts = Some(derived_cwnd(rate, self.mss()));
                }
                self.report_rate(ctx);
                self.wake_pacer(ctx);
                self.arm_rto(ctx);
            }
        }
    }

    fn with_cc(
        &mut self,
        ctx: &mut EndpointCtx,
        f: impl FnOnce(&mut dyn CongestionControl, &mut Ctx),
    ) {
        let mut effects = std::mem::take(&mut self.effects);
        {
            let mut cc = Ctx::new(ctx.now, ctx.rng(), &mut effects);
            f(self.cc.as_mut(), &mut cc);
        }
        self.effects = effects;
        self.apply_effects(ctx);
    }

    /// Transmit one packet (retransmissions first). Returns false if there
    /// was nothing to send.
    fn send_one(&mut self, ctx: &mut EndpointCtx) -> bool {
        // Skip retx entries that got acked (or un-lost) while queued.
        while let Some(&seq) = self.retx_queue.front() {
            if self.sb.is_acked(seq) || !self.sb.is_lost(seq) {
                self.retx_queue.pop_front();
                continue;
            }
            self.retx_queue.pop_front();
            self.sb.on_send(seq, ctx.now, true);
            ctx.send_data(seq, self.mss(), true);
            let ev = SentEvent {
                now: ctx.now,
                seq,
                bytes: self.mss(),
                retx: true,
                in_flight: self.sb.in_flight(),
            };
            if self.batched() {
                self.agg.on_sent(&ev);
            } else {
                self.with_cc(ctx, |c, cc| c.on_sent(&ev, cc));
            }
            return true;
        }
        let next = self.sb.next_seq();
        if self.cfg.transport.size.exhausted(next, self.mss()) {
            return false;
        }
        self.sb.on_send(next, ctx.now, false);
        match self.cc.probe_tag() {
            Some(train) => ctx.send_probe(next, self.mss(), train),
            None => ctx.send_data(next, self.mss(), false),
        }
        let ev = SentEvent {
            now: ctx.now,
            seq: next,
            bytes: self.mss(),
            retx: false,
            in_flight: self.sb.in_flight(),
        };
        if self.batched() {
            self.agg.on_sent(&ev);
        } else {
            self.with_cc(ctx, |c, cc| c.on_sent(&ev, cc));
        }
        true
    }

    // ---- paced release ---------------------------------------------------

    fn arm_pacer(&mut self, ctx: &mut EndpointCtx, at: SimTime) {
        self.pace_gen += 1;
        self.pace_armed = true;
        ctx.set_timer(at, TOKEN_PACE | (self.pace_gen & TOKEN_GEN_MASK));
    }

    fn on_pace_tick(&mut self, ctx: &mut EndpointCtx) {
        self.pace_armed = false;
        if self.finished {
            return;
        }
        if self.sb.in_flight() >= self.flight_limit() {
            if self.windowed() {
                // Window-blocked: the next ACK re-arms the pacer.
                return;
            }
            // Flow-window blocked (memory guard); re-check one gap later.
            self.arm_pacer(ctx, ctx.now + self.pace_gap());
            return;
        }
        if self.send_one(ctx) {
            if self.windowed() {
                self.arm_rto(ctx);
            }
            if self.has_work() {
                self.arm_pacer(ctx, ctx.now + self.pace_gap());
            }
        }
        // If idle (nothing to send), the pacer re-arms when work arrives
        // (ack opens window / retransmission queued).
    }

    /// Wake the pacer if it went idle and there is work (and window room)
    /// again.
    fn wake_pacer(&mut self, ctx: &mut EndpointCtx) {
        if !self.finished
            && !self.pace_armed
            && self.has_work()
            && self.sb.in_flight() < self.flight_limit()
        {
            self.arm_pacer(ctx, ctx.now);
        }
    }

    // ---- ack-clocked release (cwnd without a pacing rate) ----------------

    /// New packets the window and remaining data allow right now.
    fn sendable_new(&self) -> u64 {
        let room = self.flight_limit().saturating_sub(self.sb.in_flight());
        match self.cfg.transport.size.packets(self.mss()) {
            None => room,
            Some(total) => room.min(total.saturating_sub(self.sb.next_seq())),
        }
    }

    /// Fill the congestion window (ack-clocked mode) or wake the pacer.
    ///
    /// In ack-clocked mode, new data goes through segmentation-offload
    /// aggregation: segments are released in bursts of `tso_burst_pkts`
    /// (or after `tso_flush`), back-to-back — the burstiness of a real
    /// offloading NIC. Retransmissions bypass aggregation.
    fn try_send(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        if self.paced() {
            self.wake_pacer(ctx);
            return;
        }
        // Loss repair is never held back by offload aggregation.
        while !self.retx_queue.is_empty() && self.sb.in_flight() < self.flight_limit() {
            if !self.send_one(ctx) {
                break;
            }
        }
        let burst = self.cfg.tso_burst_pkts.max(1) as u64;
        let n = self.sendable_new();
        if n > 0 {
            let last_chunk = match self.cfg.transport.size.packets(self.mss()) {
                Some(total) => self.sb.next_seq() + n >= total,
                None => false,
            };
            if n >= burst || last_chunk {
                for _ in 0..n {
                    if !self.send_one(ctx) {
                        break;
                    }
                }
            } else {
                self.arm_tso_flush(ctx);
            }
        }
        self.arm_rto(ctx);
    }

    fn arm_tso_flush(&mut self, ctx: &mut EndpointCtx) {
        if self.tso_armed {
            return;
        }
        self.tso_armed = true;
        self.tso_gen += 1;
        ctx.set_timer(
            ctx.now + self.cfg.tso_flush,
            TOKEN_TSO | (self.tso_gen & TOKEN_GEN_MASK),
        );
    }

    fn on_tso_flush(&mut self, ctx: &mut EndpointCtx) {
        self.tso_armed = false;
        if self.finished || self.paced() {
            return;
        }
        let n = self.sendable_new();
        for _ in 0..n {
            if !self.send_one(ctx) {
                break;
            }
        }
        if n > 0 {
            self.arm_rto(ctx);
        }
    }

    // ---- loss machinery --------------------------------------------------

    /// Declare losses via the scoreboard and notify the algorithm. The
    /// windowed machinery additionally tracks recovery episodes.
    fn scan_losses(&mut self, ctx: &mut EndpointCtx) {
        let rto = self.rtt.rto();
        let lost = self.sb.detect_losses(ctx.now, rto);
        if lost.is_empty() {
            return;
        }
        ctx.record_loss(lost.len() as u64);
        let new_episode = if self.windowed() {
            if self.in_recovery() {
                false
            } else {
                self.recovery_point = Some(self.sb.next_seq());
                true
            }
        } else {
            true
        };
        self.retx_queue.extend(lost.iter().copied());
        if !self.windowed() {
            // Pure rate control never arms the RTO timer — the
            // SRTT-clocked scan is its timeout machinery, so a scan that
            // writes packets off without any intervening forward progress
            // plays the role of an RTO firing: it drives the consecutive-
            // timeout count (any progress resets it) and enforces the
            // dead-time budget.
            self.timeouts_since_progress += 1;
            if let Some(budget) = self.cfg.dead_time_budget {
                let dark = ctx.now.saturating_since(self.last_progress_at);
                if dark >= budget {
                    self.stall(ctx, dark);
                    return;
                }
            }
        }
        let ev = LossEvent {
            now: ctx.now,
            seqs: &lost,
            kind: LossKind::Detected,
            new_episode,
            in_flight: self.sb.in_flight(),
            mss: self.mss(),
        };
        if self.batched() {
            self.agg.on_loss(&ev);
            if ev.new_episode {
                // Urgent flush: a fresh loss episode is delivered on the
                // spot so batched loss-driven algorithms react as promptly
                // as per-ACK ones (only growth is deferred to the cadence).
                self.flush_report(ctx);
            }
        } else {
            self.with_cc(ctx, |c, cc| c.on_loss(&ev, cc));
        }
        if self.paced() {
            self.wake_pacer(ctx);
        }
    }

    fn arm_scan(&mut self, ctx: &mut EndpointCtx) {
        if self.scan_armed || self.finished {
            return;
        }
        self.scan_armed = true;
        let interval = self
            .rtt
            .srtt_or(SimDuration::from_millis(100))
            .max(SimDuration::from_millis(10));
        ctx.set_timer(ctx.now + interval, TOKEN_SCAN);
    }

    fn arm_rto(&mut self, ctx: &mut EndpointCtx) {
        if self.sb.in_flight() == 0 && self.retx_queue.is_empty() {
            return;
        }
        let backoff = 1u64 << self.rto_backoff.min(6);
        let deadline = ctx.now + SimDuration::from_nanos(self.rtt.rto().as_nanos() * backoff);
        self.rto_deadline = deadline;
        // Lazy re-arm: an event already due at or before the deadline will
        // fire, notice the pushed-out deadline, and re-schedule itself.
        match self.rto_event_at {
            Some(at) if at <= deadline => {}
            _ => self.schedule_rto_event(ctx, deadline),
        }
    }

    fn schedule_rto_event(&mut self, ctx: &mut EndpointCtx, at: SimTime) {
        self.rto_gen += 1;
        self.rto_event_at = Some(at);
        ctx.set_timer(at, TOKEN_RTO | (self.rto_gen & TOKEN_GEN_MASK));
    }

    fn on_rto_event(&mut self, ctx: &mut EndpointCtx) {
        self.rto_event_at = None;
        if self.finished || (self.sb.in_flight() == 0 && self.retx_queue.is_empty()) {
            return; // nothing outstanding; stay disarmed
        }
        if ctx.now < self.rto_deadline {
            // The deadline moved while this event sat in the queue (ACKs
            // re-based it); chase it instead of declaring a timeout.
            self.schedule_rto_event(ctx, self.rto_deadline);
            return;
        }
        self.on_rto_fire(ctx);
    }

    /// Abort the flow: the dead-time budget expired. All machinery halts
    /// behind the `finished` flag (stale timers no-op); the stall and its
    /// partial-progress statistics land in the flow's `FlowStats::stalled`.
    fn stall(&mut self, ctx: &mut EndpointCtx, dark: SimDuration) {
        self.finished = true;
        ctx.stall(dark, self.timeouts_since_progress);
    }

    fn on_rto_fire(&mut self, ctx: &mut EndpointCtx) {
        if self.finished || (self.sb.in_flight() == 0 && self.retx_queue.is_empty()) {
            return;
        }
        self.timeouts_since_progress += 1;
        if let Some(budget) = self.cfg.dead_time_budget {
            let dark = ctx.now.saturating_since(self.last_progress_at);
            if dark >= budget {
                self.stall(ctx, dark);
                return;
            }
        }
        self.rto_backoff += 1;
        let lost = self.sb.mark_all_lost();
        ctx.record_loss(lost.len() as u64);
        // Requeue every lost sequence the scoreboard knows, not just the
        // ones this timeout declared: seqs declared lost *before* the RTO
        // were sitting in the old queue, and dropping them with the
        // `clear()` left them permanently unretransmitted (a sized flow
        // would wedge with the cum-ack hole open and no timer armed).
        self.retx_queue.clear();
        self.retx_queue.extend(self.sb.lost_seqs());
        // RTO aborts any recovery episode; slow-start restart.
        self.recovery_point = None;
        let ev = LossEvent {
            now: ctx.now,
            seqs: &lost,
            kind: LossKind::Timeout,
            new_episode: true,
            in_flight: self.sb.in_flight(),
            mss: self.mss(),
        };
        if self.batched() {
            self.agg.on_loss(&ev);
            // A timeout is always flushed immediately: the algorithm must
            // collapse its window / rate before the retransmission burst.
            self.flush_report(ctx);
        } else {
            self.with_cc(ctx, |c, cc| c.on_loss(&ev, cc));
        }
        self.report_rate(ctx);
        self.try_send(ctx);
        self.arm_rto(ctx);
    }

    /// Recovery from an outage: first forward progress after deep RTO
    /// backoff. The RTT estimator is re-seeded from the fresh sample
    /// (pre-outage smoothing no longer describes the path — after a
    /// reroute it may be a different path entirely), the algorithm gets
    /// its [`CongestionControl::on_resume`] hook, and any hybrid window
    /// the algorithm left untouched is re-derived from the pacing rate and
    /// the fresh RTT instead of resuming stale.
    fn resume(&mut self, ctx: &mut EndpointCtx, sample: Option<SimDuration>) {
        self.rto_backoff = 0;
        let mut fresh = RttEstimator::new(self.resolved_min_rto, SimDuration::from_secs(120));
        if let Some(s) = sample {
            fresh.on_sample(s);
        }
        self.rtt = fresh;
        let cwnd_before = self.cwnd_pkts;
        self.with_cc(ctx, |c, cc| c.on_resume(cc));
        if let (Some(rate), Some(_)) = (self.rate_bps, self.cwnd_pkts) {
            if self.cwnd_pkts == cwnd_before {
                let srtt = self.rtt.srtt_or(SimDuration::from_millis(100));
                let derived = (rate * srtt.as_secs_f64() / (self.mss() as f64 * 8.0)).max(2.0);
                self.cwnd_pkts = Some(derived.min(self.cfg.max_cwnd_pkts));
            }
        }
        self.report_rate(ctx);
    }

    // ---- reporting / completion -----------------------------------------

    fn report_rate(&mut self, ctx: &mut EndpointCtx) {
        let rate = self.derived_rate();
        let (last_t, last_r) = self.last_rate_report;
        let due = last_t == SimTime::MAX
            || ctx.now.saturating_since(last_t) >= SimDuration::from_millis(100)
            || (last_r > 0.0 && ((rate - last_r) / last_r).abs() > 0.05);
        if due {
            self.last_rate_report = (ctx.now, rate);
            ctx.record_rate(rate);
        }
    }

    fn check_finished(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        if let Some(total) = self.cfg.transport.size.packets(self.mss()) {
            if self.sb.all_acked_below(total) {
                self.finished = true;
                ctx.finish();
            }
        }
    }

    // ---- batched measurement reports -------------------------------------

    /// Length of the next report interval: the algorithm's one-shot
    /// override if it set one (PCC aligning reports with its monitor
    /// intervals), else the configured cadence. The adaptive default
    /// re-reads the smoothed RTT at every boundary.
    fn report_interval(&mut self) -> SimDuration {
        if let Some(d) = self.requested_interval.take() {
            return d.max(SimDuration::from_micros(100));
        }
        match self.report_mode {
            ReportMode::Batched(ReportInterval::Rtts(k)) => self
                .rtt
                .srtt_or(SimDuration::from_millis(100))
                .mul_f64(k)
                .max(SimDuration::from_millis(1)),
            ReportMode::Batched(ReportInterval::Fixed(d)) => d.max(SimDuration::from_micros(100)),
            // Unreachable: the report timer is only armed in batched mode.
            ReportMode::PerAck => SimDuration::MAX,
        }
    }

    fn arm_report(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        let interval = self.report_interval();
        self.report_gen += 1;
        ctx.set_timer(
            ctx.now + interval,
            TOKEN_REPORT | (self.report_gen & TOKEN_GEN_MASK),
        );
    }

    /// Close the current interval, stamp the engine snapshot, and deliver
    /// the report. Empty intervals are delivered too — interval-structured
    /// algorithms (PCC) use the boundary itself as their clock.
    fn emit_report(&mut self, ctx: &mut EndpointCtx) {
        let mut rep = self.agg.take(ctx.now);
        let srtt = self.rtt.srtt_or(SimDuration::from_millis(100));
        rep.srtt = srtt;
        rep.min_rtt = self.rtt.min_rtt().unwrap_or(srtt);
        rep.in_flight = self.sb.in_flight();
        rep.cum_ack = self.sb.cum_ack();
        rep.mss = self.mss();
        rep.in_recovery = self.in_recovery();
        self.with_cc(ctx, |c, cc| c.on_report(&rep, cc));
        if self.windowed() {
            self.report_rate(ctx);
        }
        if self.paced() {
            self.wake_pacer(ctx);
        } else {
            self.try_send(ctx);
        }
    }

    /// Out-of-cadence report (loss episode / timeout): emit now and
    /// restart the cadence, invalidating the pending tick via generation.
    fn flush_report(&mut self, ctx: &mut EndpointCtx) {
        self.emit_report(ctx);
        self.arm_report(ctx);
    }

    fn on_report_tick(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        self.emit_report(ctx);
        self.arm_report(ctx);
    }
}

impl Endpoint for CcSender {
    fn start(&mut self, ctx: &mut EndpointCtx) {
        // Resolve the feedback path before the first callback so a
        // `set_report_interval` in `on_start` lands on the right machinery.
        self.report_mode = self.cfg.report.unwrap_or_else(|| self.cc.report_mode());
        self.with_cc(ctx, |c, cc| c.on_start(cc));
        assert!(
            self.rate_bps.is_some() || self.cwnd_pkts.is_some(),
            "algorithm `{}` set neither a rate nor a cwnd in on_start",
            self.cc.name()
        );
        // The RTO floor convention differs between user-space rate control
        // and TCP-style window control; honour an explicit override.
        let min_rto = self.cfg.min_rto.unwrap_or(if self.windowed() {
            WINDOWED_MIN_RTO
        } else {
            RATE_MIN_RTO
        });
        self.resolved_min_rto = min_rto;
        self.last_progress_at = ctx.now;
        self.rtt = RttEstimator::new(min_rto, SimDuration::from_secs(120));
        if let Some(rate) = self.rate_bps {
            ctx.record_rate(rate);
            self.arm_pacer(ctx, ctx.now);
        }
        if self.windowed() {
            if !self.paced() {
                self.report_rate(ctx);
                self.try_send(ctx);
            }
            self.arm_rto(ctx);
        } else {
            self.arm_scan(ctx);
        }
        if self.batched() {
            self.agg.begin(ctx.now);
            self.arm_report(ctx);
        }
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        let Some(info) = pkt.as_ack() else {
            debug_assert!(false, "sender got non-ACK");
            return;
        };
        if self.finished {
            // A stalled flow ignores stragglers (a real socket is closed).
            return;
        }
        let out = self.sb.on_ack(info, ctx.now);
        debug_assert!(
            self.sb.cum_ack() >= self.last_cum_ack,
            "cumulative ack went backwards: {} < {}",
            self.sb.cum_ack(),
            self.last_cum_ack
        );
        self.last_cum_ack = self.sb.cum_ack();
        debug_assert!(
            (self.sb.tracked() as u64) <= self.cfg.max_in_flight.saturating_mul(2) + 64,
            "scoreboard leak: {} entries tracked against an in-flight cap of {}",
            self.sb.tracked(),
            self.cfg.max_in_flight
        );
        let resuming = out.newly_acked > 0 && self.timeouts_since_progress >= RESUME_TIMEOUTS;
        if let Some(rtt) = out.rtt {
            self.rtt.on_sample(rtt);
            ctx.record_rtt(rtt);
            if self.windowed() {
                self.rto_backoff = 0;
            }
        }
        if out.newly_acked > 0 {
            self.last_progress_at = ctx.now;
            self.timeouts_since_progress = 0;
        }
        if resuming {
            self.resume(ctx, out.rtt);
        }
        // Loss detection (reordering threshold / deadline), both modes.
        self.scan_losses(ctx);
        // Recovery exit: cumulative ack passed the recovery point.
        if let Some(rp) = self.recovery_point {
            if self.sb.cum_ack() >= rp {
                self.recovery_point = None;
            }
        }
        if out.rtt.is_some() || out.newly_acked > 0 {
            let fallback = self.rtt.srtt_or(SimDuration::from_millis(100));
            let ack = AckEvent {
                now: ctx.now,
                seq: info.acked_seq,
                rtt: out.rtt.unwrap_or(fallback),
                sampled: out.rtt.is_some(),
                srtt: fallback,
                min_rtt: self.rtt.min_rtt().unwrap_or(fallback),
                max_rtt: self.rtt.max_rtt().unwrap_or(fallback),
                recv_at: info.recv_at,
                probe_train: info.probe_train,
                of_retx: info.of_retx,
                cum_ack: info.cum_ack,
                newly_acked: out.newly_acked.min(u32::MAX as u64) as u32,
                in_flight: self.sb.in_flight(),
                mss: self.mss(),
                in_recovery: self.in_recovery(),
            };
            if self.batched() {
                self.agg.on_ack(&ack);
            } else {
                self.with_cc(ctx, |c, cc| c.on_ack(&ack, cc));
            }
        }
        if self.windowed() {
            self.report_rate(ctx);
        }
        self.check_finished(ctx);
        if self.paced() {
            self.wake_pacer(ctx);
        } else {
            self.try_send(ctx);
        }
        if self.windowed() && out.newly_acked > 0 {
            self.arm_rto(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        let kind = token & !TOKEN_GEN_MASK;
        let gen = token & TOKEN_GEN_MASK;
        match kind {
            TOKEN_PACE => {
                if gen == (self.pace_gen & TOKEN_GEN_MASK) {
                    self.on_pace_tick(ctx);
                }
            }
            TOKEN_SCAN => {
                self.scan_armed = false;
                self.scan_losses(ctx);
                self.arm_scan(ctx);
            }
            TOKEN_CTRL => {
                self.with_cc(ctx, |c, cc| c.on_timer(gen, cc));
                if self.paced() {
                    self.wake_pacer(ctx);
                } else {
                    self.try_send(ctx);
                }
            }
            TOKEN_RTO => {
                if gen == (self.rto_gen & TOKEN_GEN_MASK) {
                    self.on_rto_event(ctx);
                }
            }
            TOKEN_TSO => {
                if gen == (self.tso_gen & TOKEN_GEN_MASK) {
                    self.on_tso_flush(ctx);
                }
            }
            TOKEN_REPORT => {
                if gen == (self.report_gen & TOKEN_GEN_MASK) {
                    self.on_report_tick(ctx);
                }
            }
            _ => debug_assert!(false, "unknown timer token"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::Ctx;
    use crate::flow::FlowSize;
    use crate::receiver::SackReceiver;
    use pcc_simnet::link::LinkConfig;
    use pcc_simnet::prelude::*;

    /// Fixed-rate algorithm for engine tests (pure rate mode).
    struct FixedRate {
        bps: f64,
        acks: u64,
        losses: u64,
        sent: u64,
    }

    impl FixedRate {
        fn new(bps: f64) -> Self {
            FixedRate {
                bps,
                acks: 0,
                losses: 0,
                sent: 0,
            }
        }
    }

    impl CongestionControl for FixedRate {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(self.bps);
        }
        fn on_sent(&mut self, _ev: &SentEvent, _ctx: &mut Ctx) {
            self.sent += 1;
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {
            self.acks += 1;
        }
        fn on_loss(&mut self, loss: &LossEvent, _ctx: &mut Ctx) {
            self.losses += loss.seqs.len() as u64;
        }
    }

    /// Minimal Reno-like algorithm for engine tests (pure window mode; the
    /// real variants live in `pcc-tcp`).
    struct MiniReno {
        cwnd: f64,
        ssthresh: f64,
    }

    impl MiniReno {
        fn new() -> Self {
            MiniReno {
                cwnd: 10.0,
                ssthresh: f64::MAX,
            }
        }
    }

    impl CongestionControl for MiniReno {
        fn name(&self) -> &'static str {
            "mini-reno"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_cwnd(self.cwnd);
        }
        fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
            if ack.newly_acked == 0 || ack.in_recovery {
                return;
            }
            for _ in 0..ack.newly_acked {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0;
                } else {
                    self.cwnd += 1.0 / self.cwnd;
                }
            }
            ctx.set_cwnd(self.cwnd);
        }
        fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
            match loss.kind {
                LossKind::Detected => {
                    if loss.new_episode {
                        self.ssthresh = (self.cwnd / 2.0).max(2.0);
                        self.cwnd = self.ssthresh;
                    }
                }
                LossKind::Timeout => {
                    self.ssthresh = (self.cwnd / 2.0).max(2.0);
                    self.cwnd = 1.0;
                }
            }
            ctx.set_cwnd(self.cwnd);
        }
    }

    /// Hybrid: MiniReno window plus an explicit pacing rate `cwnd/SRTT` —
    /// what the seed engine needed a config flag for is now two effects.
    struct PacedMiniReno {
        inner: MiniReno,
    }

    impl CongestionControl for PacedMiniReno {
        fn name(&self) -> &'static str {
            "mini-reno-paced"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            self.inner.on_start(ctx);
            ctx.set_rate(self.inner.cwnd * 1500.0 * 8.0 / 0.1);
        }
        fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
            self.inner.on_ack(ack, ctx);
            let srtt = ack.srtt.as_secs_f64().max(1e-6);
            ctx.set_rate(self.inner.cwnd * ack.mss as f64 * 8.0 / srtt);
        }
        fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
            self.inner.on_loss(loss, ctx);
            let srtt = SimDuration::from_millis(100).as_secs_f64();
            ctx.set_rate(self.inner.cwnd * loss.mss as f64 * 8.0 / srtt);
        }
    }

    fn net(seed: u64) -> NetworkBuilder {
        NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed,
        })
    }

    fn run_fixed(
        ctrl_bps: f64,
        link_mbps: f64,
        loss: f64,
        secs: u64,
        size: FlowSize,
        seed: u64,
    ) -> (SimReport, FlowId) {
        let mut net = net(seed);
        let mut db = Dumbbell::new(
            &mut net,
            BottleneckSpec::new(link_mbps * 1e6, 64_000).with_loss(loss),
        );
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let cfg = CcSenderConfig {
            transport: TransportConfig { mss: 1500, size },
            ..Default::default()
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(cfg, Box::new(FixedRate::new(ctrl_bps)))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        (net.build().run_until(SimTime::from_secs(secs)), flow)
    }

    fn run_tcp(
        rate_mbps: f64,
        rtt_ms: u64,
        buffer: u64,
        loss: f64,
        secs: u64,
        size: FlowSize,
        paced: bool,
    ) -> (SimReport, FlowId) {
        let mut net = net(12);
        let mut db = Dumbbell::new(
            &mut net,
            BottleneckSpec::new(rate_mbps * 1e6, buffer).with_loss(loss),
        );
        let path = db.attach_flow(&mut net, SimDuration::from_millis(rtt_ms));
        let cfg = CcSenderConfig {
            transport: TransportConfig { mss: 1500, size },
            ..Default::default()
        };
        let cc: Box<dyn CongestionControl> = if paced {
            Box::new(PacedMiniReno {
                inner: MiniReno::new(),
            })
        } else {
            Box::new(MiniReno::new())
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(cfg, cc)),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        (net.build().run_until(SimTime::from_secs(secs)), flow)
    }

    // ---- rate mode (the seed RateSender suite) ---------------------------

    #[test]
    fn paces_at_requested_rate() {
        let (report, flow) = run_fixed(5e6, 100.0, 0.0, 10, FlowSize::Infinite, 1);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(10));
        assert!((tput - 5.0).abs() < 0.25, "paced at 5 Mbps, got {tput}");
    }

    #[test]
    fn overdriving_pins_at_bottleneck() {
        let (report, flow) = run_fixed(50e6, 10.0, 0.0, 10, FlowSize::Infinite, 2);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(10));
        assert!((tput - 10.0).abs() < 0.5, "pinned at 10 Mbps, got {tput}");
    }

    #[test]
    fn sized_flow_completes_under_loss() {
        let (report, flow) = run_fixed(10e6, 100.0, 0.1, 30, FlowSize::kb(256), 3);
        let st = &report.flows[flow.index()];
        assert!(
            st.completed_at.is_some(),
            "reliability: 256 KB must complete despite 10% loss"
        );
        assert!(st.detected_losses > 0);
    }

    #[test]
    fn detects_losses_close_to_link_rate() {
        let (report, flow) = run_fixed(20e6, 100.0, 0.05, 10, FlowSize::Infinite, 4);
        let st = &report.flows[flow.index()];
        let detected = st.detected_losses as f64;
        let sent = st.sent_packets as f64;
        let rate = detected / sent;
        assert!(
            (rate - 0.05).abs() < 0.015,
            "detected loss fraction {rate} vs configured 0.05"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fixed(8e6, 10.0, 0.02, 5, FlowSize::Infinite, 77).0;
        let b = run_fixed(8e6, 10.0, 0.02, 5, FlowSize::Infinite, 77).0;
        assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        assert_eq!(a.flows[0].detected_losses, b.flows[0].detected_losses);
        assert_eq!(a.events_processed, b.events_processed);
    }

    // ---- window mode (the seed WindowSender suite) -----------------------

    #[test]
    fn fills_clean_pipe() {
        // 10 Mbps, 30 ms RTT, BDP buffer: Reno should keep the pipe full.
        let (report, flow) = run_tcp(10.0, 30, 37_500, 0.0, 10, FlowSize::Infinite, false);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(2), SimTime::from_secs(10));
        assert!(tput > 9.0, "utilization {tput} Mbps of 10");
    }

    #[test]
    fn recovers_from_random_loss() {
        // With 0.1% loss the flow must keep making progress (not stall).
        let (report, flow) = run_tcp(10.0, 30, 37_500, 0.001, 20, FlowSize::Infinite, false);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(5), SimTime::from_secs(20));
        assert!(tput > 2.0, "progress under loss: {tput} Mbps");
        assert!(report.flows[flow.index()].detected_losses > 0);
    }

    #[test]
    fn sized_flow_completes_reliably_under_loss() {
        // 100 KB across a 5% lossy link: every byte must eventually arrive.
        let (report, flow) = run_tcp(10.0, 20, 37_500, 0.05, 30, FlowSize::kb(100), false);
        let st = &report.flows[flow.index()];
        assert!(st.completed_at.is_some(), "flow must complete");
        assert_eq!(st.goodput_bytes, 100 * 1024 / 1500 * 1500 + 1500); // 69 pkts
    }

    #[test]
    fn goodput_never_exceeds_sent_unique_data() {
        let (report, flow) = run_tcp(5.0, 20, 18_750, 0.02, 10, FlowSize::Infinite, false);
        let st = &report.flows[flow.index()];
        assert!(st.goodput_bytes <= st.delivered_bytes);
        assert!(st.delivered_packets <= st.sent_packets);
    }

    #[test]
    fn survives_total_blackout_then_resumes() {
        // Link dies (100% loss) for 2 s mid-flow; RTO backoff must not wedge
        // the connection; after healing the flow resumes.
        let mut net = net(99);
        let mut sched = LinkSchedule::new();
        sched.push(LinkStep {
            at: SimTime::from_secs(3),
            rate_bps: None,
            delay: None,
            loss: Some(1.0),
        });
        sched.push(LinkStep {
            at: SimTime::from_secs(5),
            rate_bps: None,
            delay: None,
            loss: Some(0.0),
        });
        let fwd = net.add_link(
            LinkConfig::bottleneck(10e6, SimDuration::from_millis(10), 64_000).with_schedule(sched),
        );
        let rev = net.add_link(LinkConfig::delay_only(SimDuration::from_millis(10)));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(
                CcSenderConfig::default(),
                Box::new(MiniReno::new()),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(12));
        let resumed =
            report.avg_throughput_mbps(flow, SimTime::from_secs(8), SimTime::from_secs(12));
        assert!(resumed > 5.0, "flow resumed after blackout: {resumed} Mbps");
    }

    // ---- graceful degradation: dead-time budget & resumption -------------

    /// Dumbbell whose forward link goes 100% lossy at `die` (and heals at
    /// `heal`, if given).
    fn blackout_net(
        seed: u64,
        die: SimTime,
        heal: Option<SimTime>,
    ) -> (NetworkBuilder, Vec<LinkId>, Vec<LinkId>) {
        let mut net = net(seed);
        let mut sched = LinkSchedule::new();
        sched.push(LinkStep {
            at: die,
            rate_bps: None,
            delay: None,
            loss: Some(1.0),
        });
        if let Some(at) = heal {
            sched.push(LinkStep {
                at,
                rate_bps: None,
                delay: None,
                loss: Some(0.0),
            });
        }
        let fwd = net.add_link(
            LinkConfig::bottleneck(10e6, SimDuration::from_millis(10), 64_000).with_schedule(sched),
        );
        let rev = net.add_link(LinkConfig::delay_only(SimDuration::from_millis(10)));
        (net, vec![fwd], vec![rev])
    }

    #[test]
    fn dead_time_budget_stalls_windowed_flow_with_partial_progress() {
        // Permanent blackout at 2 s with a 3 s budget: instead of backing
        // off forever, the engine aborts and records the stall.
        let (mut net, fwd, rev) = blackout_net(31, SimTime::from_secs(2), None);
        let cfg = CcSenderConfig {
            dead_time_budget: Some(SimDuration::from_secs(3)),
            ..Default::default()
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(cfg, Box::new(MiniReno::new()))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: fwd,
            rev_path: rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(30));
        let st = &report.flows[flow.index()];
        let stall = st.stalled.expect("typed stall recorded in flow stats");
        assert!(st.completed_at.is_none(), "the flow did not complete");
        assert!(stall.dark >= SimDuration::from_secs(3), "budget respected");
        assert!(stall.timeouts >= 1, "fruitless timeouts counted");
        assert!(
            stall.at < SimTime::from_secs(15),
            "gave up near budget + backoff, not at the horizon: {:?}",
            stall.at
        );
        assert!(st.delivered_bytes > 0, "partial progress preserved");
    }

    #[test]
    fn dead_time_budget_stalls_rate_flow_too() {
        // Pure rate mode has no RTO timer; the scan-driven budget must
        // still convert the blackout into a stall.
        let (mut net, fwd, rev) = blackout_net(32, SimTime::from_secs(2), None);
        let cfg = CcSenderConfig {
            dead_time_budget: Some(SimDuration::from_secs(3)),
            ..Default::default()
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(cfg, Box::new(FixedRate::new(5e6)))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: fwd,
            rev_path: rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(30));
        let st = &report.flows[flow.index()];
        let stall = st.stalled.expect("rate-mode stall recorded");
        assert!(stall.dark >= SimDuration::from_secs(3));
        assert!(stall.timeouts >= 3, "consecutive dark scans counted");
        assert!(
            stall.at < SimTime::from_secs(6),
            "rate mode gives up promptly: {:?}",
            stall.at
        );
    }

    /// Rate algorithm that counts its `on_resume` calls.
    struct ResumeProbe {
        inner: FixedRate,
        resumes: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl CongestionControl for ResumeProbe {
        fn name(&self) -> &'static str {
            "resume-probe"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            self.inner.on_start(ctx);
        }
        fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
            self.inner.on_ack(ack, ctx);
        }
        fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
            self.inner.on_loss(loss, ctx);
        }
        fn on_resume(&mut self, _ctx: &mut Ctx) {
            self.resumes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn outage_recovery_invokes_on_resume_and_flow_continues() {
        // Blackout from 2 s to 5 s, no budget: the engine must ride it out,
        // then detect the recovery, fire `on_resume`, and keep delivering.
        let (mut net, fwd, rev) =
            blackout_net(33, SimTime::from_secs(2), Some(SimTime::from_secs(5)));
        let resumes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(
                CcSenderConfig::default(),
                Box::new(ResumeProbe {
                    inner: FixedRate::new(5e6),
                    resumes: std::sync::Arc::clone(&resumes),
                }),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: fwd,
            rev_path: rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(12));
        assert!(
            resumes.load(std::sync::atomic::Ordering::Relaxed) >= 1,
            "the resumption hook fired"
        );
        let after = report.avg_throughput_mbps(flow, SimTime::from_secs(6), SimTime::from_secs(12));
        assert!(after > 3.0, "flow resumed after repair: {after} Mbps");
        assert!(
            report.flows[flow.index()].stalled.is_none(),
            "no budget, no stall"
        );
    }

    // ---- hybrid mode (rate + cwnd together) ------------------------------

    #[test]
    fn paced_window_moves_data() {
        let (report, flow) = run_tcp(10.0, 30, 37_500, 0.0, 10, FlowSize::Infinite, true);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(2), SimTime::from_secs(10));
        assert!(tput > 8.0, "paced utilization {tput} Mbps of 10");
    }

    #[test]
    fn pacing_smooths_queue_occupancy() {
        // Paced TCP should have a lower peak backlog than burst TCP in slow
        // start on a deep buffer.
        let (burst, _) = run_tcp(10.0, 30, 1 << 20, 0.0, 5, FlowSize::Infinite, false);
        let (paced, _) = run_tcp(10.0, 30, 1 << 20, 0.0, 5, FlowSize::Infinite, true);
        let burst_peak = burst.links[0].queue.max_backlog_bytes;
        let paced_peak = paced.links[0].queue.max_backlog_bytes;
        assert!(
            paced_peak <= burst_peak,
            "paced peak {paced_peak} vs burst {burst_peak}"
        );
    }

    #[test]
    fn hybrid_respects_both_rate_and_window() {
        // A huge rate with a tiny window: the window must cap throughput at
        // ~cwnd/RTT, far below the requested rate.
        struct TinyWindowBigRate;
        impl CongestionControl for TinyWindowBigRate {
            fn name(&self) -> &'static str {
                "tiny-window"
            }
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_rate(100e6);
                ctx.set_cwnd(4.0);
            }
            fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
            fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
        }
        let mut net = net(5);
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 1 << 20));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(
                CcSenderConfig::default(),
                Box::new(TinyWindowBigRate),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(5));
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(5));
        // 4 pkts per 30 ms RTT = 1.6 Mbps; allow generous slack.
        assert!(tput < 3.0, "window caps the paced rate: {tput} Mbps");
        assert!(tput > 0.5, "data still flows: {tput} Mbps");
    }

    // ---- batched reports & mode switching --------------------------------

    /// Rate algorithm on the batched path: counts its reports and sums the
    /// per-report ack totals (shared with the test via a sink).
    struct BatchedFixed {
        bps: f64,
        sink: std::sync::Arc<std::sync::Mutex<(u64, u64, u64)>>, // (reports, acked, lost)
    }

    impl CongestionControl for BatchedFixed {
        fn name(&self) -> &'static str {
            "batched-fixed"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(self.bps);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {
            panic!("batched mode must not deliver per-ACK events");
        }
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {
            panic!("batched mode must not deliver per-event losses");
        }
        fn report_mode(&self) -> ReportMode {
            ReportMode::batched_rtt()
        }
        fn on_report(&mut self, rep: &crate::report::MeasurementReport, _ctx: &mut Ctx) {
            let mut s = self
                .sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s.0 += 1;
            s.1 += rep.acked_pkts;
            s.2 += rep.lost_pkts;
        }
    }

    #[test]
    fn batched_path_aggregates_instead_of_per_ack() {
        let sink = std::sync::Arc::new(std::sync::Mutex::new((0u64, 0u64, 0u64)));
        let mut net = net(21);
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(100e6, 64_000).with_loss(0.02));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(
                CcSenderConfig::default(),
                Box::new(BatchedFixed {
                    bps: 10e6,
                    sink: std::sync::Arc::clone(&sink),
                }),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(10));
        let st = &report.flows[flow.index()];
        let (reports, acked, lost) = *sink
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // ~10 s at one report per 30 ms RTT ⇒ hundreds of reports, far
        // fewer than the ~8000 ACKs per-ACK mode would have delivered.
        assert!(reports > 100, "reports delivered on cadence: {reports}");
        assert!(
            reports < st.delivered_packets / 4,
            "batching amortized: {reports} reports vs {} acks",
            st.delivered_packets
        );
        // Aggregation is lossless: summed report fields cover what the
        // engine resolved (the final partial interval is never emitted).
        assert!(acked <= st.delivered_packets);
        assert!(acked >= st.delivered_packets * 95 / 100);
        assert!(lost > 0, "2% loss surfaced through reports");
    }

    /// Rate-based startup, window-based steady state: the mode-switch
    /// seam. Switches on the first productive report *without* setting a
    /// cwnd (exercising the engine's rate→cwnd derivation), then opens the
    /// window explicitly.
    struct SwitchToy {
        switched: bool,
    }

    impl CongestionControl for SwitchToy {
        fn name(&self) -> &'static str {
            "switch-toy"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(2e6);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
        fn report_mode(&self) -> ReportMode {
            ReportMode::batched_rtt()
        }
        fn on_report(&mut self, rep: &crate::report::MeasurementReport, ctx: &mut Ctx) {
            if !self.switched {
                // Hold the rate phase for 2 s so both phases are visible
                // at the report's 100 ms sampling grid.
                if rep.acked_pkts > 0 && rep.end >= SimTime::from_secs(2) {
                    self.switched = true;
                    ctx.set_mode(CcMode::Window);
                }
            } else {
                ctx.set_cwnd(40.0);
            }
        }
    }

    #[test]
    fn mode_switch_rate_startup_then_window_steady_state() {
        let mut net = net(22);
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(10e6, 64_000));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(
                CcSenderConfig::default(),
                Box::new(SwitchToy { switched: false }),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(10));
        let early =
            report.avg_throughput_mbps(flow, SimTime::from_millis(500), SimTime::from_secs(2));
        let late = report.avg_throughput_mbps(flow, SimTime::from_secs(5), SimTime::from_secs(10));
        // Startup paces at 2 Mbps; after the switch a 40-packet window over
        // 30 ms RTT wants 16 Mbps and pins the 10 Mbps bottleneck.
        assert!(early < 4.0, "rate-paced startup: {early} Mbps");
        assert!(
            late > 8.0,
            "window steady state fills the pipe: {late} Mbps"
        );
    }

    #[test]
    fn config_override_forces_batching_on_a_per_ack_algorithm() {
        // MiniReno knows nothing about reports; forcing batched mode must
        // keep the engine machinery alive (window clocking, RTO) even
        // though the algorithm sees no events after on_start — cwnd just
        // stays at its initial value.
        let mut net = net(23);
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(10e6, 64_000));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(30));
        let cfg = CcSenderConfig {
            report: Some(ReportMode::batched_rtt()),
            ..Default::default()
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(cfg, Box::new(MiniReno::new()))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(5));
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(1), SimTime::from_secs(5));
        // 10-packet initial window over 30 ms RTT ⇒ ~4 Mbps, ack-clocked.
        assert!(tput > 2.0, "static window still moves data: {tput} Mbps");
    }

    #[test]
    #[should_panic(expected = "neither a rate nor a cwnd")]
    fn algorithm_must_declare_operating_point() {
        struct Lazy;
        impl CongestionControl for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn on_start(&mut self, _ctx: &mut Ctx) {}
            fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
            fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
        }
        let mut net = net(1);
        let mut db = Dumbbell::new(&mut net, BottleneckSpec::new(10e6, 64_000));
        let path = db.attach_flow(&mut net, SimDuration::from_millis(10));
        net.add_flow(FlowSpec {
            sender: Box::new(CcSender::new(CcSenderConfig::default(), Box::new(Lazy))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        net.build().run_until(SimTime::from_secs(1));
    }
}
