//! The SACK scoreboard: per-packet fate tracking and loss detection.
//!
//! Both sender kinds (window-based TCP and rate-based PCC/SABUL/PCP) share
//! this structure. It records every transmission, matches incoming selective
//! ACKs, and detects losses two ways:
//!
//! * **Reordering threshold** (RFC 6675 `DupThresh`): an unacked original
//!   transmission is lost once a packet sent ≥ 3 sequence numbers later has
//!   been SACKed.
//! * **Timeout**: any transmission (including retransmissions, whose
//!   sequence-based detection would be ambiguous) is lost once it has been
//!   outstanding longer than the supplied RTO.

use std::collections::VecDeque;

use pcc_simnet::packet::AckInfo;
use pcc_simnet::time::{SimDuration, SimTime};

/// Fate of one sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SeqState {
    /// In flight, fate unknown.
    Outstanding,
    /// SACKed (or cumulatively acked).
    Acked,
    /// Declared lost, waiting for retransmission to be scheduled.
    Lost,
}

#[derive(Clone, Copy, Debug)]
struct SeqEntry {
    state: SeqState,
    /// Time of the most recent transmission of this sequence.
    last_sent_at: SimTime,
    /// Number of retransmissions so far (0 = original only).
    retx_count: u32,
}

/// Outcome of processing one ACK.
#[derive(Clone, Copy, Debug, Default)]
pub struct AckOutcome {
    /// Sequences newly acknowledged (cumulative + selective) by this ACK.
    pub newly_acked: u64,
    /// Exact RTT of the acknowledged transmission (receiver echoes the
    /// packet's send timestamp, so even retransmissions yield clean samples).
    pub rtt: Option<SimDuration>,
    /// This ACK acknowledged something not seen before.
    pub advanced: bool,
}

/// SACK scoreboard over packet-granularity sequence numbers.
#[derive(Clone, Debug)]
pub struct Scoreboard {
    /// Entry `i` describes sequence `base + i`.
    entries: VecDeque<SeqEntry>,
    /// All sequences `< base` are acked and pruned.
    base: u64,
    /// Highest sequence ever sent, plus one.
    high_seq: u64,
    /// Highest SACKed sequence, plus one (0 = nothing sacked).
    high_sacked: u64,
    /// Packets currently considered in flight.
    in_flight: u64,
    /// Total losses declared.
    losses: u64,
    /// Reordering threshold in packets.
    dup_thresh: u64,
    /// Conservative lower bound on the oldest `Outstanding` entry's
    /// `last_sent_at` (never later than the true minimum, possibly
    /// earlier once that entry resolves). Lets [`Scoreboard::detect_losses`]
    /// skip its timeout sweep entirely while nothing can have timed out —
    /// the sweep itself refreshes the bound, so a stale value costs at
    /// most one extra sweep per RTO. `None` until the first send.
    timeout_floor: Option<SimTime>,
    /// Sequences below this have already been judged by the reordering
    /// rule. Once a scan reaches a cutoff, no entry below it can ever
    /// qualify again (originals there were marked `Lost` on the spot and
    /// retransmissions carry `retx_count > 0`, which the rule excludes),
    /// so the next scan resumes here instead of re-walking from `base` —
    /// without this, a single unrepaired hole pinning `base` makes every
    /// ACK rescan the whole outstanding window, turning a loss-heavy run
    /// quadratic.
    reorder_floor: u64,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

impl Scoreboard {
    /// Empty scoreboard with the standard reordering threshold of 3.
    pub fn new() -> Self {
        Scoreboard {
            entries: VecDeque::new(),
            base: 0,
            high_seq: 0,
            high_sacked: 0,
            in_flight: 0,
            losses: 0,
            dup_thresh: 3,
            timeout_floor: None,
            reorder_floor: 0,
        }
    }

    fn entry(&self, seq: u64) -> Option<&SeqEntry> {
        if seq < self.base {
            return None;
        }
        self.entries.get((seq - self.base) as usize)
    }

    /// Index of `seq` in `entries`, if tracked.
    fn idx(&self, seq: u64) -> Option<usize> {
        if seq < self.base {
            return None;
        }
        let i = (seq - self.base) as usize;
        (i < self.entries.len()).then_some(i)
    }

    /// Record a transmission of `seq` at `now`. New sequences must be sent
    /// in order; retransmissions may target any outstanding sequence.
    pub fn on_send(&mut self, seq: u64, now: SimTime, retx: bool) {
        self.timeout_floor = Some(match self.timeout_floor {
            Some(floor) => floor.min(now),
            None => now,
        });
        if !retx {
            assert_eq!(seq, self.high_seq, "new data must be sent in order");
            self.entries.push_back(SeqEntry {
                state: SeqState::Outstanding,
                last_sent_at: now,
                retx_count: 0,
            });
            self.high_seq += 1;
            self.in_flight += 1;
        } else if let Some(i) = self.idx(seq) {
            let e = &mut self.entries[i];
            debug_assert_ne!(e.state, SeqState::Acked, "retransmitting acked seq");
            if e.state == SeqState::Lost {
                // Back in flight.
                self.in_flight += 1;
            }
            e.state = SeqState::Outstanding;
            e.last_sent_at = now;
            e.retx_count += 1;
        }
    }

    /// Process a SACK. Returns what the ACK newly covered.
    pub fn on_ack(&mut self, info: &AckInfo, now: SimTime) -> AckOutcome {
        let mut out = AckOutcome::default();
        // Selective part.
        if let Some(i) = self.idx(info.acked_seq) {
            let e = &mut self.entries[i];
            if e.state != SeqState::Acked {
                if e.state == SeqState::Outstanding {
                    self.in_flight -= 1;
                }
                e.state = SeqState::Acked;
                out.newly_acked += 1;
                out.advanced = true;
                out.rtt = Some(now.saturating_since(info.echo_sent_at));
            }
        }
        if info.acked_seq + 1 > self.high_sacked {
            self.high_sacked = info.acked_seq + 1;
            out.advanced = true;
        }
        // Cumulative part: everything below cum_ack is acked.
        if info.cum_ack > self.base {
            let upto = info.cum_ack.min(self.high_seq);
            for seq in self.base..upto {
                let i = (seq - self.base) as usize;
                let e = &mut self.entries[i];
                if e.state != SeqState::Acked {
                    if e.state == SeqState::Outstanding {
                        self.in_flight -= 1;
                    }
                    e.state = SeqState::Acked;
                    out.newly_acked += 1;
                    out.advanced = true;
                }
            }
            self.high_sacked = self.high_sacked.max(upto);
            // Prune.
            while self.base < upto {
                self.entries.pop_front();
                self.base += 1;
            }
        }
        out
    }

    /// Declare losses per the reordering-threshold and timeout rules.
    /// Returns the newly lost sequences (oldest first); the caller should
    /// queue them for retransmission.
    ///
    /// This runs on every ACK, so both rules are bounded instead of
    /// sweeping the whole window each call: reorder candidates all sit in
    /// the SACK-hole region `[base, dup_cutoff)` (empty for an in-order
    /// flow), and the timeout sweep is skipped while `timeout_floor`
    /// proves nothing has been outstanding for an RTO yet.
    pub fn detect_losses(&mut self, now: SimTime, rto: SimDuration) -> Vec<u64> {
        let mut lost = Vec::new();
        // Reordering rule: only *original* transmissions below the SACK
        // frontier minus DupThresh qualify, and everything below `base` is
        // acked — so the candidates live in `[base, dup_cutoff)`.
        let dup_cutoff = self.high_sacked.saturating_sub(self.dup_thresh);
        let start = self.base.max(self.reorder_floor);
        if dup_cutoff > start {
            let skip = (start - self.base) as usize;
            let end = ((dup_cutoff - self.base) as usize).min(self.entries.len());
            for (i, e) in self.entries.iter_mut().enumerate().take(end).skip(skip) {
                if e.state == SeqState::Outstanding && e.retx_count == 0 {
                    e.state = SeqState::Lost;
                    self.in_flight -= 1;
                    self.losses += 1;
                    lost.push(self.base + i as u64);
                }
            }
            self.reorder_floor = self.base + end as u64;
        }
        // Timeout rule (covers retransmissions the reorder rule cannot
        // judge): sweep only when the floor says a timeout is possible,
        // and refresh the floor from what the sweep actually saw.
        let timeout_possible = match self.timeout_floor {
            Some(floor) => now.saturating_since(floor) >= rto,
            None => false,
        };
        if timeout_possible {
            let had_reorder_losses = !lost.is_empty();
            let mut new_floor: Option<SimTime> = None;
            for (i, e) in self.entries.iter_mut().enumerate() {
                if e.state != SeqState::Outstanding {
                    continue;
                }
                if now.saturating_since(e.last_sent_at) >= rto {
                    e.state = SeqState::Lost;
                    self.in_flight -= 1;
                    self.losses += 1;
                    lost.push(self.base + i as u64);
                } else {
                    new_floor = Some(match new_floor {
                        Some(f) => f.min(e.last_sent_at),
                        None => e.last_sent_at,
                    });
                }
            }
            self.timeout_floor = new_floor;
            // The two passes each emit in ascending order; restore the
            // global oldest-first contract when both contributed.
            if had_reorder_losses {
                lost.sort_unstable();
            }
        }
        lost
    }

    /// Declare every outstanding packet lost (used on RTO).
    pub fn mark_all_lost(&mut self) -> Vec<u64> {
        let mut lost = Vec::new();
        for i in 0..self.entries.len() {
            let seq = self.base + i as u64;
            let e = &mut self.entries[i];
            if e.state == SeqState::Outstanding {
                e.state = SeqState::Lost;
                self.in_flight -= 1;
                self.losses += 1;
                lost.push(seq);
            }
        }
        lost
    }

    /// Every sequence currently marked lost (awaiting retransmission),
    /// oldest first — the set an RTO must requeue. This is a superset of
    /// what [`Scoreboard::mark_all_lost`] just returned: sequences
    /// declared lost *earlier* (and possibly dropped from a
    /// retransmission queue since) are still here.
    pub fn lost_seqs(&self) -> Vec<u64> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.state == SeqState::Lost)
            .map(|(i, _)| self.base + i as u64)
            .collect()
    }

    /// Oldest sequence not yet acked, if any (`== cum ack` point).
    pub fn oldest_unacked(&self) -> Option<u64> {
        for i in 0..self.entries.len() {
            if self.entries[i].state != SeqState::Acked {
                return Some(self.base + i as u64);
            }
        }
        None
    }

    /// Send time of the oldest outstanding transmission.
    pub fn oldest_outstanding_sent_at(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .filter(|e| e.state == SeqState::Outstanding)
            .map(|e| e.last_sent_at)
            .min()
    }

    /// True when every sequence below `upper` has been acked.
    pub fn all_acked_below(&self, upper: u64) -> bool {
        if self.base >= upper {
            return true;
        }
        // Nothing at or above the SACK frontier is acked (and `high_sacked
        // <= high_seq`), so a frontier below `upper` answers without the
        // scan — the common case for every mid-flow call.
        if self.high_sacked < upper || self.high_seq < upper {
            return false;
        }
        (self.base..upper.min(self.high_seq))
            .all(|seq| matches!(self.entry(seq), Some(e) if e.state == SeqState::Acked))
    }

    /// Packets currently in flight (sent, not acked, not declared lost).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Entries currently tracked (the `base..next_seq` window). Memory is
    /// proportional to this; the engine bounds it against its in-flight
    /// cap as a leak tripwire.
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Cumulative-ack point (all sequences below are acked and pruned —
    /// equals `base`, which may lag the true cum-ack until pruning).
    pub fn cum_ack(&self) -> u64 {
        self.base
    }

    /// Next fresh sequence number.
    pub fn next_seq(&self) -> u64 {
        self.high_seq
    }

    /// Highest SACKed sequence plus one.
    pub fn high_sacked(&self) -> u64 {
        self.high_sacked
    }

    /// Total losses declared over the scoreboard's lifetime.
    pub fn total_losses(&self) -> u64 {
        self.losses
    }

    /// Retransmission count for `seq` (0 when unknown).
    pub fn retx_count(&self, seq: u64) -> u32 {
        self.entry(seq).map(|e| e.retx_count).unwrap_or(0)
    }

    /// True if `seq` is currently marked lost (awaiting retransmission).
    pub fn is_lost(&self, seq: u64) -> bool {
        matches!(self.entry(seq), Some(e) if e.state == SeqState::Lost)
    }

    /// True if `seq` has been acked (or pruned, implying acked).
    pub fn is_acked(&self, seq: u64) -> bool {
        seq < self.base || matches!(self.entry(seq), Some(e) if e.state == SeqState::Acked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn ack(acked_seq: u64, cum_ack: u64, sent_at: SimTime) -> AckInfo {
        AckInfo {
            acked_seq,
            cum_ack,
            echo_sent_at: sent_at,
            recv_at: SimTime::ZERO,
            recv_bytes: 0,
            probe_train: None,
            of_retx: false,
        }
    }

    #[test]
    fn in_order_ack_flow() {
        let mut sb = Scoreboard::new();
        for s in 0..5 {
            sb.on_send(s, t(s), false);
        }
        assert_eq!(sb.in_flight(), 5);
        let out = sb.on_ack(&ack(0, 1, t(0)), t(30));
        assert_eq!(out.newly_acked, 1);
        assert_eq!(out.rtt, Some(SimDuration::from_millis(30)));
        assert_eq!(sb.cum_ack(), 1);
        assert_eq!(sb.in_flight(), 4);
        let out = sb.on_ack(&ack(4, 5, t(4)), t(34));
        assert_eq!(out.newly_acked, 4, "cumulative covers 1..4 plus sack of 4");
        assert_eq!(sb.in_flight(), 0);
        assert!(sb.all_acked_below(5));
    }

    #[test]
    fn duplicate_ack_is_no_op() {
        let mut sb = Scoreboard::new();
        sb.on_send(0, t(0), false);
        let first = sb.on_ack(&ack(0, 1, t(0)), t(10));
        assert_eq!(first.newly_acked, 1);
        let dup = sb.on_ack(&ack(0, 1, t(0)), t(12));
        assert_eq!(dup.newly_acked, 0);
        assert!(!dup.advanced);
        assert_eq!(dup.rtt, None);
    }

    #[test]
    fn reorder_threshold_loss() {
        let mut sb = Scoreboard::new();
        for s in 0..6 {
            sb.on_send(s, t(s), false);
        }
        // Seq 0 never arrives; SACKs for 1, 2, 3 arrive.
        for s in 1..=3 {
            sb.on_ack(&ack(s, 0, t(s)), t(30 + s));
        }
        // high_sacked = 4, dup_thresh 3 => seqs < 1 are lost.
        let lost = sb.detect_losses(t(40), SimDuration::from_secs(60));
        assert_eq!(lost, vec![0]);
        assert!(sb.is_lost(0));
        assert_eq!(sb.total_losses(), 1);
        // A second scan declares nothing new.
        assert!(sb
            .detect_losses(t(41), SimDuration::from_secs(60))
            .is_empty());
    }

    #[test]
    fn timeout_loss_for_retransmission() {
        let mut sb = Scoreboard::new();
        for s in 0..5 {
            sb.on_send(s, t(0), false);
        }
        for s in 1..=4 {
            sb.on_ack(&ack(s, 0, t(0)), t(20 + s));
        }
        let lost = sb.detect_losses(t(30), SimDuration::from_secs(60));
        assert_eq!(lost, vec![0]);
        // Retransmit seq 0; it's back in flight and immune to the
        // reordering rule (retx_count > 0)...
        sb.on_send(0, t(31), true);
        assert!(sb
            .detect_losses(t(32), SimDuration::from_secs(60))
            .is_empty());
        // ...but a timeout declares it lost again.
        let lost = sb.detect_losses(t(300), SimDuration::from_millis(200));
        assert_eq!(lost, vec![0]);
        assert_eq!(sb.retx_count(0), 1);
    }

    #[test]
    fn mark_all_lost_on_rto() {
        let mut sb = Scoreboard::new();
        for s in 0..4 {
            sb.on_send(s, t(0), false);
        }
        sb.on_ack(&ack(1, 0, t(0)), t(10));
        let lost = sb.mark_all_lost();
        assert_eq!(lost, vec![0, 2, 3]);
        assert_eq!(sb.in_flight(), 0);
    }

    #[test]
    fn lost_seqs_includes_previously_declared_losses() {
        // Regression for the RTO requeue path: seq 0 is declared lost by a
        // scan; seq 2 is still outstanding when the RTO marks all lost.
        // `mark_all_lost` reports only the newly lost seq 2, but the full
        // lost set — what an RTO must requeue — is {0, 2}.
        let mut sb = Scoreboard::new();
        for s in 0..3 {
            sb.on_send(s, t(0), false);
        }
        sb.on_ack(&ack(1, 0, t(0)), t(10));
        let scan_lost = sb.detect_losses(t(300), SimDuration::from_millis(100));
        assert_eq!(scan_lost, vec![0, 2]);
        sb.on_send(2, t(301), true); // 2 retransmitted, back in flight
        let rto_lost = sb.mark_all_lost();
        assert_eq!(rto_lost, vec![2], "only the outstanding retransmission");
        assert_eq!(sb.lost_seqs(), vec![0, 2], "the full requeue set");
    }

    #[test]
    fn oldest_unacked_tracking() {
        let mut sb = Scoreboard::new();
        assert_eq!(sb.oldest_unacked(), None);
        for s in 0..3 {
            sb.on_send(s, t(s), false);
        }
        assert_eq!(sb.oldest_unacked(), Some(0));
        sb.on_ack(&ack(0, 1, t(0)), t(10));
        assert_eq!(sb.oldest_unacked(), Some(1));
        sb.on_ack(&ack(2, 1, t(2)), t(12));
        assert_eq!(sb.oldest_unacked(), Some(1), "hole at 1");
    }

    #[test]
    fn retx_restores_inflight_accounting() {
        let mut sb = Scoreboard::new();
        sb.on_send(0, t(0), false);
        sb.on_send(1, t(0), false);
        sb.on_send(2, t(0), false);
        sb.on_send(3, t(0), false);
        for s in 1..=3 {
            sb.on_ack(&ack(s, 0, t(0)), t(10));
        }
        assert_eq!(sb.in_flight(), 1);
        let lost = sb.detect_losses(t(20), SimDuration::from_secs(60));
        assert_eq!(lost, vec![0]);
        assert_eq!(sb.in_flight(), 0);
        sb.on_send(0, t(21), true);
        assert_eq!(sb.in_flight(), 1);
        sb.on_ack(&ack(0, 4, t(21)), t(40));
        assert_eq!(sb.in_flight(), 0);
        assert!(sb.all_acked_below(4));
        assert_eq!(sb.cum_ack(), 4);
    }

    #[test]
    fn prune_keeps_indices_valid() {
        let mut sb = Scoreboard::new();
        for s in 0..100 {
            sb.on_send(s, t(s), false);
        }
        sb.on_ack(&ack(49, 50, t(49)), t(80));
        assert_eq!(sb.cum_ack(), 50);
        // Later sequences still addressable.
        sb.on_ack(&ack(75, 50, t(75)), t(100));
        assert!(sb.is_acked(75));
        assert!(!sb.is_acked(74));
        assert!(sb.is_acked(10), "pruned implies acked");
    }

    #[test]
    fn all_acked_below_requires_data_sent() {
        let mut sb = Scoreboard::new();
        sb.on_send(0, t(0), false);
        sb.on_ack(&ack(0, 1, t(0)), t(1));
        assert!(sb.all_acked_below(1));
        assert!(!sb.all_acked_below(5), "seqs 1..5 never sent");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conservation: sent = acked + lost-pending + in-flight, under any
        /// interleaving of sends, acks, and loss scans.
        #[test]
        fn scoreboard_conservation(script in proptest::collection::vec(0u8..4, 1..400)) {
            let mut sb = Scoreboard::new();
            let mut now = SimTime::ZERO;
            let mut next_ackable = 0u64;
            for op in script {
                now += SimDuration::from_millis(1);
                match op {
                    0 => {
                        let seq = sb.next_seq();
                        sb.on_send(seq, now, false);
                    }
                    1 => {
                        // Ack the oldest unacked (simulating in-order receipt).
                        if let Some(seq) = sb.oldest_unacked() {
                            if seq < sb.next_seq() {
                                let info = AckInfo {
                                    acked_seq: seq,
                                    cum_ack: seq + 1,
                                    echo_sent_at: now,
                                    recv_at: now,
                                    recv_bytes: 0,
                                    probe_train: None,
                                    of_retx: false,
                                };
                                sb.on_ack(&info, now);
                                next_ackable = next_ackable.max(seq + 1);
                            }
                        }
                    }
                    2 => {
                        let _ = sb.detect_losses(now, SimDuration::from_millis(50));
                    }
                    _ => {
                        // Retransmit the first lost seq, if any.
                        let base = sb.cum_ack();
                        for seq in base..sb.next_seq() {
                            if sb.is_lost(seq) {
                                sb.on_send(seq, now, true);
                                break;
                            }
                        }
                    }
                }
                // Invariants that must hold after every operation:
                // in_flight is never negative (type-level) and never exceeds
                // the number of unacked sequences.
                let unacked = (sb.cum_ack()..sb.next_seq())
                    .filter(|&s| !sb.is_acked(s))
                    .count() as u64;
                prop_assert!(sb.in_flight() <= unacked);
                prop_assert!(sb.high_sacked() <= sb.next_seq());
            }
        }
    }
}
