//! Flow sizing: infinite (throughput experiments) or sized (FCT/incast).

use pcc_simnet::packet::DEFAULT_DATA_BYTES;

/// How much data a flow carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowSize {
    /// Backlogged forever (long-running throughput experiments).
    Infinite,
    /// Exactly this many bytes, then the flow completes.
    Bytes(u64),
}

impl FlowSize {
    /// Number of packets to send at `mss` bytes per packet (ceiling), or
    /// `None` for unbounded flows.
    pub fn packets(&self, mss: u32) -> Option<u64> {
        match *self {
            FlowSize::Infinite => None,
            FlowSize::Bytes(b) => Some(b.div_ceil(mss as u64)),
        }
    }

    /// True if `next_seq` has reached the end of the flow.
    pub fn exhausted(&self, next_seq: u64, mss: u32) -> bool {
        match self.packets(mss) {
            None => false,
            Some(n) => next_seq >= n,
        }
    }

    /// Convenience: a sized flow of `kb` kilobytes (paper's incast uses
    /// 64/128/256 KB).
    pub fn kb(kb: u64) -> FlowSize {
        FlowSize::Bytes(kb * 1024)
    }
}

/// Common transport constants shared by all sender implementations.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Packet size on the wire (headers included).
    pub mss: u32,
    /// How much data the flow carries.
    pub size: FlowSize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mss: DEFAULT_DATA_BYTES,
            size: FlowSize::Infinite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_rounds_up() {
        assert_eq!(FlowSize::Bytes(1500).packets(1500), Some(1));
        assert_eq!(FlowSize::Bytes(1501).packets(1500), Some(2));
        assert_eq!(FlowSize::Bytes(0).packets(1500), Some(0));
        assert_eq!(FlowSize::Infinite.packets(1500), None);
    }

    #[test]
    fn exhaustion() {
        let s = FlowSize::kb(64); // 65536 bytes => 44 packets of 1500
        assert_eq!(s.packets(1500), Some(44));
        assert!(!s.exhausted(43, 1500));
        assert!(s.exhausted(44, 1500));
        assert!(!FlowSize::Infinite.exhausted(u64::MAX / 2, 1500));
    }
}
