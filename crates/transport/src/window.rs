//! Window-based (TCP-style) sender.
//!
//! A complete loss-recovery engine — SACK scoreboard, fast retransmit via
//! reordering threshold, retransmission timeouts with exponential backoff,
//! recovery episodes — with the congestion-control *decision* delegated to a
//! [`WindowCc`] implementation (New Reno, CUBIC, Illinois, Hybla, Vegas,
//! BIC, Westwood live in the `pcc-tcp` crate).
//!
//! This mirrors how Linux factors `tcp_output.c`/`tcp_input.c` from the
//! pluggable `tcp_congestion_ops`, and is exactly the structure the paper
//! criticizes: packet-level events (dupACKs, RTO) hardwired to control
//! responses (multiplicative decrease), regardless of actual performance.
//!
//! Optional packet pacing (`cwnd/SRTT` release rate) reproduces the "TCP
//! pacing" baseline of Fig. 9.

use std::collections::VecDeque;

use pcc_simnet::endpoint::{Endpoint, EndpointCtx};
use pcc_simnet::packet::Packet;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::flow::TransportConfig;
use crate::rtt::RttEstimator;
use crate::sack::Scoreboard;

/// Everything a congestion-control algorithm sees on each ACK.
#[derive(Clone, Copy, Debug)]
pub struct CcAck {
    /// Current time.
    pub now: SimTime,
    /// Exact RTT of the acknowledged transmission.
    pub rtt: SimDuration,
    /// Smoothed RTT.
    pub srtt: SimDuration,
    /// Minimum RTT observed (propagation estimate).
    pub min_rtt: SimDuration,
    /// Maximum RTT observed.
    pub max_rtt: SimDuration,
    /// Packets newly acknowledged by this ACK.
    pub newly_acked: u32,
    /// Packets currently in flight.
    pub in_flight: u64,
    /// Packet size in bytes.
    pub mss: u32,
}

/// A pluggable window-based congestion-control algorithm.
///
/// Implementations own their `cwnd`/`ssthresh`; the sender engine reads
/// [`WindowCc::cwnd`] to gate transmission and notifies the algorithm of
/// ACKs (outside recovery), loss events (entering fast recovery), and RTOs.
pub trait WindowCc: Send {
    /// Algorithm name (for reports).
    fn name(&self) -> &'static str;

    /// Process an ACK (called only outside recovery episodes).
    fn on_ack(&mut self, ack: &CcAck);

    /// A loss event begins a recovery episode (fast retransmit).
    fn on_loss_event(&mut self, now: SimTime);

    /// Retransmission timeout fired.
    fn on_rto(&mut self, now: SimTime);

    /// Current congestion window in packets.
    fn cwnd(&self) -> f64;

    /// Current slow-start threshold in packets.
    fn ssthresh(&self) -> f64;

    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }
}

/// Tuning knobs for the sender engine (not the CC algorithm).
#[derive(Clone, Copy, Debug)]
pub struct WindowSenderConfig {
    /// Transport basics (MSS, flow size).
    pub transport: TransportConfig,
    /// Pace packets at `cwnd/SRTT` instead of ack-clocked bursts.
    pub pacing: bool,
    /// Minimum RTO (Linux default 200 ms; the incast experiment depends on
    /// this constant, as the paper notes).
    pub min_rto: SimDuration,
    /// Receiver-window-like clamp on the effective window, packets. Real
    /// stacks are bounded by the advertised window; 20 000 packets (30 MB)
    /// models a well-tuned host and comfortably exceeds every BDP in the
    /// paper's evaluation (max 18 MB).
    pub max_cwnd_pkts: f64,
    /// Segmentation-offload burst size in packets. Paper-era kernels hand
    /// the NIC up to 64 KB (≈44 MSS) per TSO/GSO chunk, which leaves the
    /// host at line rate back-to-back; this burstiness — not the congestion
    /// window math — is what murders TCP on shallow buffers (Figs. 6/9,
    /// Table 1). `1` disables aggregation. Ignored in pacing mode (pacing
    /// exists precisely to kill these bursts).
    pub tso_burst_pkts: u32,
    /// How long segments may wait for a burst to fill before the NIC
    /// flushes anyway (models the offload flush timer).
    pub tso_flush: SimDuration,
}

impl Default for WindowSenderConfig {
    fn default() -> Self {
        WindowSenderConfig {
            transport: TransportConfig::default(),
            pacing: false,
            min_rto: SimDuration::from_millis(200),
            max_cwnd_pkts: 20_000.0,
            tso_burst_pkts: 44,
            tso_flush: SimDuration::from_millis(1),
        }
    }
}

const TOKEN_KIND_SHIFT: u64 = 56;
const TOKEN_RTO: u64 = 1 << TOKEN_KIND_SHIFT;
const TOKEN_PACE: u64 = 2 << TOKEN_KIND_SHIFT;
const TOKEN_TSO: u64 = 3 << TOKEN_KIND_SHIFT;
const TOKEN_GEN_MASK: u64 = (1 << TOKEN_KIND_SHIFT) - 1;

/// Window-based sender endpoint.
pub struct WindowSender {
    cfg: WindowSenderConfig,
    cc: Box<dyn WindowCc>,
    sb: Scoreboard,
    rtt: RttEstimator,
    retx_queue: VecDeque<u64>,
    /// While `Some`, a recovery episode is active until cum-ack passes it.
    recovery_point: Option<u64>,
    rto_gen: u64,
    rto_backoff: u32,
    pace_gen: u64,
    pace_armed: bool,
    tso_gen: u64,
    tso_armed: bool,
    finished: bool,
    last_rate_report: (SimTime, f64),
}

impl WindowSender {
    /// Build a sender around a congestion-control algorithm.
    pub fn new(cfg: WindowSenderConfig, cc: Box<dyn WindowCc>) -> Self {
        WindowSender {
            cfg,
            cc,
            sb: Scoreboard::new(),
            rtt: RttEstimator::new(cfg.min_rto, SimDuration::from_secs(120)),
            retx_queue: VecDeque::new(),
            recovery_point: None,
            rto_gen: 0,
            rto_backoff: 0,
            pace_gen: 0,
            pace_armed: false,
            tso_gen: 0,
            tso_armed: false,
            finished: false,
            last_rate_report: (SimTime::MAX, 0.0),
        }
    }

    /// The congestion-control algorithm's name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Total losses the scoreboard has declared.
    pub fn losses(&self) -> u64 {
        self.sb.total_losses()
    }

    fn mss(&self) -> u32 {
        self.cfg.transport.mss
    }

    fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    fn cwnd_pkts(&self) -> u64 {
        self.cc.cwnd().max(1.0).min(self.cfg.max_cwnd_pkts) as u64
    }

    /// Effective pacing rate `cwnd/SRTT` in bits/sec.
    fn pacing_rate(&self) -> f64 {
        let srtt = self.rtt.srtt_or(SimDuration::from_millis(100));
        let cwnd = self.cc.cwnd().min(self.cfg.max_cwnd_pkts);
        cwnd * self.mss() as f64 * 8.0 / srtt.as_secs_f64().max(1e-6)
    }

    /// Something to transmit right now?
    fn has_work(&self) -> bool {
        !self.retx_queue.is_empty()
            || !self
                .cfg
                .transport
                .size
                .exhausted(self.sb.next_seq(), self.mss())
    }

    /// Transmit one packet (retransmissions first). Returns false if there
    /// was nothing to send.
    fn send_one(&mut self, ctx: &mut EndpointCtx) -> bool {
        // Skip retx entries that got acked while queued.
        while let Some(&seq) = self.retx_queue.front() {
            if self.sb.is_acked(seq) || !self.sb.is_lost(seq) {
                self.retx_queue.pop_front();
                continue;
            }
            self.retx_queue.pop_front();
            self.sb.on_send(seq, ctx.now, true);
            ctx.send_data(seq, self.mss(), true);
            return true;
        }
        let next = self.sb.next_seq();
        if self.cfg.transport.size.exhausted(next, self.mss()) {
            return false;
        }
        self.sb.on_send(next, ctx.now, false);
        ctx.send_data(next, self.mss(), false);
        true
    }

    /// New packets the window and remaining data allow right now.
    fn sendable_new(&self) -> u64 {
        let room = self.cwnd_pkts().saturating_sub(self.sb.in_flight());
        match self.cfg.transport.size.packets(self.mss()) {
            None => room,
            Some(total) => room.min(total.saturating_sub(self.sb.next_seq())),
        }
    }

    /// Fill the congestion window (ack-clocked mode) or arm the pacer.
    ///
    /// In ack-clocked mode, new data goes through segmentation-offload
    /// aggregation: segments are released in bursts of `tso_burst_pkts`
    /// (or after `tso_flush`), back-to-back — the burstiness of a real
    /// offloading NIC. Retransmissions bypass aggregation.
    fn try_send(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        if self.cfg.pacing {
            if !self.pace_armed && self.has_work() && self.sb.in_flight() < self.cwnd_pkts() {
                self.arm_pacer(ctx, ctx.now);
            }
            return;
        }
        // Loss repair is never held back by offload aggregation.
        while !self.retx_queue.is_empty() && self.sb.in_flight() < self.cwnd_pkts() {
            if !self.send_one(ctx) {
                break;
            }
        }
        let burst = self.cfg.tso_burst_pkts.max(1) as u64;
        let n = self.sendable_new();
        if n > 0 {
            let last_chunk = match self.cfg.transport.size.packets(self.mss()) {
                Some(total) => self.sb.next_seq() + n >= total,
                None => false,
            };
            if n >= burst || last_chunk {
                for _ in 0..n {
                    if !self.send_one(ctx) {
                        break;
                    }
                }
            } else {
                self.arm_tso_flush(ctx);
            }
        }
        self.arm_rto(ctx);
    }

    fn arm_tso_flush(&mut self, ctx: &mut EndpointCtx) {
        if self.tso_armed {
            return;
        }
        self.tso_armed = true;
        self.tso_gen += 1;
        ctx.set_timer(
            ctx.now + self.cfg.tso_flush,
            TOKEN_TSO | (self.tso_gen & TOKEN_GEN_MASK),
        );
    }

    fn on_tso_flush(&mut self, ctx: &mut EndpointCtx) {
        self.tso_armed = false;
        if self.finished || self.cfg.pacing {
            return;
        }
        let n = self.sendable_new();
        for _ in 0..n {
            if !self.send_one(ctx) {
                break;
            }
        }
        if n > 0 {
            self.arm_rto(ctx);
        }
    }

    fn arm_pacer(&mut self, ctx: &mut EndpointCtx, at: SimTime) {
        self.pace_gen += 1;
        self.pace_armed = true;
        ctx.set_timer(at, TOKEN_PACE | (self.pace_gen & TOKEN_GEN_MASK));
    }

    fn on_pace_tick(&mut self, ctx: &mut EndpointCtx) {
        self.pace_armed = false;
        if self.finished {
            return;
        }
        if self.sb.in_flight() < self.cwnd_pkts() && self.send_one(ctx) {
            self.arm_rto(ctx);
            if self.has_work() {
                let gap = SimDuration::from_secs_f64(
                    self.mss() as f64 * 8.0 / self.pacing_rate().max(1.0),
                );
                self.arm_pacer(ctx, ctx.now + gap);
            }
        }
        // If window-blocked, the next ACK re-arms the pacer via try_send.
    }

    fn arm_rto(&mut self, ctx: &mut EndpointCtx) {
        if self.sb.in_flight() == 0 && self.retx_queue.is_empty() {
            return;
        }
        self.rto_gen += 1;
        let backoff = 1u64 << self.rto_backoff.min(6);
        let at = ctx.now + SimDuration::from_nanos(self.rtt.rto().as_nanos() * backoff);
        ctx.set_timer(at, TOKEN_RTO | (self.rto_gen & TOKEN_GEN_MASK));
    }

    fn on_rto_fire(&mut self, ctx: &mut EndpointCtx) {
        if self.finished || (self.sb.in_flight() == 0 && self.retx_queue.is_empty()) {
            return;
        }
        self.cc.on_rto(ctx.now);
        self.rto_backoff += 1;
        let lost = self.sb.mark_all_lost();
        ctx.record_loss(lost.len() as u64);
        self.retx_queue.clear();
        self.retx_queue.extend(lost);
        // RTO aborts any recovery episode; slow-start restart.
        self.recovery_point = None;
        self.report_rate(ctx);
        self.try_send(ctx);
        self.arm_rto(ctx);
    }

    fn report_rate(&mut self, ctx: &mut EndpointCtx) {
        let rate = self.pacing_rate();
        let (last_t, last_r) = self.last_rate_report;
        let due = last_t == SimTime::MAX
            || ctx.now.saturating_since(last_t) >= SimDuration::from_millis(100)
            || (last_r > 0.0 && ((rate - last_r) / last_r).abs() > 0.05);
        if due {
            self.last_rate_report = (ctx.now, rate);
            ctx.record_rate(rate);
        }
    }

    fn check_finished(&mut self, ctx: &mut EndpointCtx) {
        if self.finished {
            return;
        }
        if let Some(total) = self.cfg.transport.size.packets(self.mss()) {
            if self.sb.all_acked_below(total) {
                self.finished = true;
                ctx.finish();
            }
        }
    }
}

impl Endpoint for WindowSender {
    fn start(&mut self, ctx: &mut EndpointCtx) {
        self.report_rate(ctx);
        self.try_send(ctx);
        self.arm_rto(ctx);
    }

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        let Some(info) = pkt.as_ack() else {
            debug_assert!(false, "sender got non-ACK");
            return;
        };
        let out = self.sb.on_ack(info, ctx.now);
        if let Some(rtt) = out.rtt {
            self.rtt.on_sample(rtt);
            ctx.record_rtt(rtt);
            self.rto_backoff = 0;
        }
        // Loss detection via reordering threshold (fast retransmit).
        let losses = self.sb.detect_losses(ctx.now, self.rtt.rto());
        if !losses.is_empty() {
            ctx.record_loss(losses.len() as u64);
            if !self.in_recovery() {
                self.cc.on_loss_event(ctx.now);
                self.recovery_point = Some(self.sb.next_seq());
            }
            self.retx_queue.extend(losses);
        }
        // Recovery exit: cumulative ack passed the recovery point.
        if let Some(rp) = self.recovery_point {
            if self.sb.cum_ack() >= rp {
                self.recovery_point = None;
            }
        }
        // Window growth only outside recovery (standard behaviour).
        if out.newly_acked > 0 && !self.in_recovery() {
            let ack = CcAck {
                now: ctx.now,
                rtt: out.rtt.unwrap_or_else(|| self.rtt.srtt_or(SimDuration::from_millis(100))),
                srtt: self.rtt.srtt_or(SimDuration::from_millis(100)),
                min_rtt: self.rtt.min_rtt().unwrap_or(SimDuration::from_millis(100)),
                max_rtt: self.rtt.max_rtt().unwrap_or(SimDuration::from_millis(100)),
                newly_acked: out.newly_acked.min(u32::MAX as u64) as u32,
                in_flight: self.sb.in_flight(),
                mss: self.mss(),
            };
            self.cc.on_ack(&ack);
        }
        self.report_rate(ctx);
        self.check_finished(ctx);
        self.try_send(ctx);
        if out.newly_acked > 0 {
            self.arm_rto(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut EndpointCtx) {
        let kind = token & !TOKEN_GEN_MASK;
        let gen = token & TOKEN_GEN_MASK;
        match kind {
            TOKEN_RTO => {
                if gen == (self.rto_gen & TOKEN_GEN_MASK) {
                    self.on_rto_fire(ctx);
                }
            }
            TOKEN_PACE => {
                if gen == (self.pace_gen & TOKEN_GEN_MASK) {
                    self.on_pace_tick(ctx);
                }
            }
            TOKEN_TSO => {
                if gen == (self.tso_gen & TOKEN_GEN_MASK) {
                    self.on_tso_flush(ctx);
                }
            }
            _ => debug_assert!(false, "unknown timer token"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSize;
    use crate::receiver::SackReceiver;
    use pcc_simnet::link::LinkConfig;
    use pcc_simnet::prelude::*;

    /// Minimal Reno-like CC for engine tests (the real variants live in
    /// `pcc-tcp`).
    struct MiniReno {
        cwnd: f64,
        ssthresh: f64,
    }

    impl MiniReno {
        fn new() -> Self {
            MiniReno {
                cwnd: 10.0,
                ssthresh: f64::MAX,
            }
        }
    }

    impl WindowCc for MiniReno {
        fn name(&self) -> &'static str {
            "mini-reno"
        }
        fn on_ack(&mut self, ack: &CcAck) {
            for _ in 0..ack.newly_acked {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0;
                } else {
                    self.cwnd += 1.0 / self.cwnd;
                }
            }
        }
        fn on_loss_event(&mut self, _now: SimTime) {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
        }
        fn on_rto(&mut self, _now: SimTime) {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = 1.0;
        }
        fn cwnd(&self) -> f64 {
            self.cwnd
        }
        fn ssthresh(&self) -> f64 {
            self.ssthresh
        }
    }

    fn run_tcp(
        rate_mbps: f64,
        rtt_ms: u64,
        buffer: u64,
        loss: f64,
        secs: u64,
        size: FlowSize,
        pacing: bool,
    ) -> (SimReport, FlowId) {
        let mut net = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 12,
        });
        let db = Dumbbell::new(
            &mut net,
            BottleneckSpec::new(rate_mbps * 1e6, buffer).with_loss(loss),
        );
        let path = db.attach_flow(&mut net, SimDuration::from_millis(rtt_ms));
        let cfg = WindowSenderConfig {
            transport: TransportConfig { mss: 1500, size },
            pacing,
            ..Default::default()
        };
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(WindowSender::new(cfg, Box::new(MiniReno::new()))),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: path.fwd,
            rev_path: path.rev,
            start_at: SimTime::ZERO,
        });
        (net.build().run_until(SimTime::from_secs(secs)), flow)
    }

    #[test]
    fn fills_clean_pipe() {
        // 10 Mbps, 30 ms RTT, BDP buffer: Reno should keep the pipe full.
        let (report, flow) = run_tcp(10.0, 30, 37_500, 0.0, 10, FlowSize::Infinite, false);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(2), SimTime::from_secs(10));
        assert!(tput > 9.0, "utilization {tput} Mbps of 10");
    }

    #[test]
    fn recovers_from_random_loss() {
        // With 0.1% loss the flow must keep making progress (not stall).
        let (report, flow) = run_tcp(10.0, 30, 37_500, 0.001, 20, FlowSize::Infinite, false);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(5), SimTime::from_secs(20));
        assert!(tput > 2.0, "progress under loss: {tput} Mbps");
        assert!(report.flows[flow.index()].detected_losses > 0);
    }

    #[test]
    fn sized_flow_completes_reliably_under_loss() {
        // 100 KB across a 5% lossy link: every byte must eventually arrive.
        let (report, flow) = run_tcp(10.0, 20, 37_500, 0.05, 30, FlowSize::kb(100), false);
        let st = &report.flows[flow.index()];
        assert!(st.completed_at.is_some(), "flow must complete");
        assert_eq!(st.goodput_bytes, 100 * 1024 / 1500 * 1500 + 1500); // 69 pkts
    }

    #[test]
    fn goodput_never_exceeds_sent_unique_data() {
        let (report, flow) = run_tcp(5.0, 20, 18_750, 0.02, 10, FlowSize::Infinite, false);
        let st = &report.flows[flow.index()];
        assert!(st.goodput_bytes <= st.delivered_bytes);
        assert!(st.delivered_packets <= st.sent_packets);
    }

    #[test]
    fn pacing_mode_moves_data() {
        let (report, flow) = run_tcp(10.0, 30, 37_500, 0.0, 10, FlowSize::Infinite, true);
        let tput = report.avg_throughput_mbps(flow, SimTime::from_secs(2), SimTime::from_secs(10));
        assert!(tput > 8.0, "paced utilization {tput} Mbps of 10");
    }

    #[test]
    fn pacing_smooths_queue_occupancy() {
        // Paced TCP should have a lower peak backlog than burst TCP in slow
        // start on a deep buffer.
        let (burst, _) = run_tcp(10.0, 30, 1 << 20, 0.0, 5, FlowSize::Infinite, false);
        let (paced, _) = run_tcp(10.0, 30, 1 << 20, 0.0, 5, FlowSize::Infinite, true);
        let burst_peak = burst.links[0].queue.max_backlog_bytes;
        let paced_peak = paced.links[0].queue.max_backlog_bytes;
        assert!(
            paced_peak <= burst_peak,
            "paced peak {paced_peak} vs burst {burst_peak}"
        );
    }

    #[test]
    fn survives_total_blackout_then_resumes() {
        // Link dies (100% loss) for 2 s mid-flow; RTO backoff must not wedge
        // the connection; after healing the flow resumes.
        let mut net = NetworkBuilder::new(SimConfig {
            sample_interval: SimDuration::from_millis(100),
            seed: 99,
        });
        let mut sched = LinkSchedule::new();
        sched.push(LinkStep {
            at: SimTime::from_secs(3),
            rate_bps: None,
            delay: None,
            loss: Some(1.0),
        });
        sched.push(LinkStep {
            at: SimTime::from_secs(5),
            rate_bps: None,
            delay: None,
            loss: Some(0.0),
        });
        let fwd = net.add_link(
            LinkConfig::bottleneck(10e6, SimDuration::from_millis(10), 64_000)
                .with_schedule(sched),
        );
        let rev = net.add_link(LinkConfig::delay_only(SimDuration::from_millis(10)));
        let flow = net.add_flow(FlowSpec {
            sender: Box::new(WindowSender::new(
                WindowSenderConfig::default(),
                Box::new(MiniReno::new()),
            )),
            receiver: Box::new(SackReceiver::new()),
            fwd_path: vec![fwd],
            rev_path: vec![rev],
            start_at: SimTime::ZERO,
        });
        let report = net.build().run_until(SimTime::from_secs(12));
        let resumed =
            report.avg_throughput_mbps(flow, SimTime::from_secs(8), SimTime::from_secs(12));
        assert!(resumed > 5.0, "flow resumed after blackout: {resumed} Mbps");
    }
}
