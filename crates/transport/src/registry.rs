//! Datapath-agnostic algorithm registry with parameterized specs.
//!
//! Every congestion-control algorithm in the workspace registers a named
//! factory here; anything that needs a sender — the scenario builders, the
//! experiments binary, the real-UDP datapath — resolves algorithms through
//! [`by_name`] and receives a `Box<dyn CongestionControl>` it can hand to
//! any engine. Lookups of unknown names return a typed
//! [`UnknownAlgorithm`] error (never a panic), which lists the registered
//! names for discoverability.
//!
//! ## Parameterized specs
//!
//! [`by_name`] accepts *specs*, not just bare names (see [`crate::spec`]):
//!
//! ```text
//! name[:key=val[,key=val]*]      e.g.  pcc:eps=0.05,util=latency
//!                                      cubic:beta=0.7,iw=32
//!                                      bbr:probe_rtt_ms=5000
//! ```
//!
//! Algorithms registered via [`register_with_schema`] declare which keys
//! they accept and with what types/ranges; [`by_name`] validates the spec
//! against the schema and hands the factory a typed [`SpecParams`] bag on
//! [`CcParams::spec`]. An unknown key or out-of-range value is a typed
//! [`InvalidParam`] that lists the valid keys — never a panic. `"name:"`
//! is equivalent to `"name"`.
//!
//! The workspace's registered keys (see each crate's
//! `register_algorithms()` for the authoritative schema):
//!
//! | Algorithm | Keys |
//! |---|---|
//! | `pcc`, `pcc-simple`, `pcc-lossresilient`, `pcc-latency` | `eps`, `eps_max`, `tm`, `slack`, `mi_pkts`, `rct`, `util`, `alpha`, `cutoff`, `slope_penalty` |
//! | `newreno[-paced]` | `iw` |
//! | `cubic[-paced]` | `beta`, `c`, `iw` |
//! | `illinois[-paced]` | `alpha_max`, `beta_max`, `iw` |
//! | `hybla[-paced]` | `rtt0_ms`, `iw` |
//! | `vegas[-paced]` | `alpha`, `beta`, `iw` |
//! | `bic[-paced]` | `beta`, `iw` |
//! | `westwood[-paced]` | `gain`, `iw` |
//! | `sabul` | `syn_ms`, `decrease`, `rate0_mbps` |
//! | `pcp` | `train`, `poll_ms`, `rate0_mbps` |
//! | `bbr` | `probe_rtt_ms`, `cwnd_gain` |
//!
//! Use [`schema_of`] to inspect a name's schema programmatically
//! (`pcc-experiments algos` prints these tables from it).
//!
//! Registration is explicit because the algorithm crates sit *above* this
//! crate in the dependency graph (they implement the trait defined here):
//! each of `pcc-core`, `pcc-tcp`, `pcc-rate`, and `pcc-bbr` exposes a
//! `register_algorithms()` function, and the aggregation layers
//! (`pcc-scenarios`' `install_registry`, the `pcc` facade) call them once
//! at startup. Registering the same name twice is idempotent by design
//! (last registration wins), so multiple entry points may install the
//! defaults without coordination.
//!
//! The global table recovers from lock poisoning (a panicking test thread
//! mid-registration) by adopting the poisoned state: every write holds the
//! guard only across a single `BTreeMap::insert`, so the table is always
//! left consistent and the poison flag carries no information.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use pcc_simnet::time::SimDuration;

use crate::cc::CongestionControl;
use crate::spec::{
    describe_schema, validate, AlgoSpec, InvalidParam, Schema, SchemaCheck, SpecParams,
};

/// Construction parameters handed to algorithm factories.
#[derive(Clone, Debug)]
pub struct CcParams {
    /// Packet size on the wire, bytes.
    pub mss: u32,
    /// A-priori RTT estimate for algorithms that need one before the first
    /// sample (PCC's starting rate, paced-TCP's initial pacing rate).
    pub rtt_hint: SimDuration,
    /// Validated spec parameters (`name:key=val` — empty for plain-name
    /// construction). [`by_name`] fills this from the spec string after
    /// schema validation, so factories can trust types and ranges.
    pub spec: SpecParams,
}

impl Default for CcParams {
    fn default() -> Self {
        CcParams {
            mss: 1500,
            rtt_hint: SimDuration::from_millis(100),
            spec: SpecParams::default(),
        }
    }
}

impl CcParams {
    /// Set the RTT hint.
    pub fn with_rtt_hint(mut self, rtt: SimDuration) -> Self {
        self.rtt_hint = rtt;
        self
    }

    /// Set the MSS.
    pub fn with_mss(mut self, mss: u32) -> Self {
        self.mss = mss;
        self
    }

    /// Set the validated spec-parameter bag (mostly for tests; [`by_name`]
    /// does this automatically).
    pub fn with_spec(mut self, spec: SpecParams) -> Self {
        self.spec = spec;
        self
    }
}

/// A named algorithm constructor.
pub type CcFactory = Box<dyn Fn(&CcParams) -> Box<dyn CongestionControl> + Send + Sync>;

/// Lookup failure: the requested name is not registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm {
    /// The name that failed to resolve (the full spec string as the
    /// caller wrote it).
    pub name: String,
    /// Names that *do* resolve to a constructor, sorted (empty if nothing
    /// registered yet — a hint that no `register_algorithms()` ran).
    /// Broken aliases (cyclic or dangling) are excluded, so the error
    /// never lists its own subject as available.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.known.is_empty() {
            write!(
                f,
                "unknown congestion-control algorithm `{}` (registry is empty — was \
                 install_registry()/register_algorithms() called?)",
                self.name
            )
        } else {
            write!(
                f,
                "unknown congestion-control algorithm `{}`; registered: {}",
                self.name,
                self.known.join(", ")
            )
        }
    }
}

impl std::error::Error for UnknownAlgorithm {}

/// Why a spec failed to produce an algorithm: the base name is not
/// registered, or the parameter list does not validate against the
/// algorithm's schema. Both are typed values — spec resolution never
/// panics, whatever the input string.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec's base name resolves to no registered factory.
    Unknown(UnknownAlgorithm),
    /// The base name exists, but a parameter is unknown, mistyped,
    /// out-of-range, duplicated, or syntactically malformed.
    InvalidParam(InvalidParam),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Unknown(e) => e.fmt(f),
            SpecError::InvalidParam(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<UnknownAlgorithm> for SpecError {
    fn from(e: UnknownAlgorithm) -> Self {
        SpecError::Unknown(e)
    }
}

impl From<InvalidParam> for SpecError {
    fn from(e: InvalidParam) -> Self {
        SpecError::InvalidParam(e)
    }
}

impl SpecError {
    /// The requested name/spec, whichever variant.
    pub fn requested(&self) -> &str {
        match self {
            SpecError::Unknown(e) => &e.name,
            SpecError::InvalidParam(e) => &e.algo,
        }
    }
}

/// A table entry: a real constructor (with its parameter schema), or an
/// alias naming another entry. Aliases are *data*, resolved iteratively
/// inside [`by_name`] — an alias factory that re-entered `by_name` would
/// recurse without bound on a cycle (`a → b → a`, or an alias shadowing
/// its own target) and blow the stack.
enum Entry {
    Factory {
        f: Arc<CcFactory>,
        schema: Schema,
        check: Option<Arc<SchemaCheck>>,
    },
    Alias(String),
}

/// Alias-chain hop budget. Real registries alias one or two hops deep;
/// anything past this is a cycle (or indistinguishable from one) and
/// resolves to the typed error instead of crashing.
const MAX_ALIAS_HOPS: usize = 16;

fn table() -> &'static RwLock<BTreeMap<String, Entry>> {
    static TABLE: OnceLock<RwLock<BTreeMap<String, Entry>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Register (or replace) a named algorithm factory that takes no spec
/// parameters (any `name:key=val` key is an [`InvalidParam`]).
pub fn register(name: &str, factory: CcFactory) {
    register_with_schema(name, &[], factory);
}

/// Register (or replace) a named algorithm factory together with its
/// parameter schema. [`by_name`] validates spec parameters against the
/// schema before invoking the factory, which receives the typed bag on
/// [`CcParams::spec`] — so factories never see an unknown key or an
/// out-of-range value.
pub fn register_with_schema(name: &str, schema: Schema, factory: CcFactory) {
    insert_factory(name, schema, None, factory);
}

/// [`register_with_schema`] plus a cross-key [`SchemaCheck`] that runs
/// after per-key validation — for constraints a single key cannot
/// express (e.g. a parameter that only takes effect under a particular
/// `util` choice). A check failure is an [`InvalidParam`], so factories
/// stay infallible.
pub fn register_with_schema_checked(
    name: &str,
    schema: Schema,
    check: Box<SchemaCheck>,
    factory: CcFactory,
) {
    insert_factory(name, schema, Some(Arc::from(check)), factory);
}

fn insert_factory(name: &str, schema: Schema, check: Option<Arc<SchemaCheck>>, factory: CcFactory) {
    table()
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(
            name.to_string(),
            Entry::Factory {
                f: Arc::new(factory),
                schema,
                check,
            },
        );
}

/// Register `alias` to resolve to whatever `target` names at lookup time
/// (spec parameters on the alias validate against the target's schema).
/// Cyclic alias chains (including self-aliases) are tolerated at
/// registration and surface as a typed [`UnknownAlgorithm`] from
/// [`by_name`], never a crash.
pub fn register_alias(alias: &str, target: &str) {
    table()
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(alias.to_string(), Entry::Alias(target.to_string()));
}

/// Construct an algorithm from a spec — a bare name (`"cubic"`) or a
/// parameterized one (`"cubic:beta=0.7,iw=32"`). Unknown names — and
/// unresolvable alias chains (dangling, cyclic, or deeper than the
/// 16-hop budget) — are [`SpecError::Unknown`]; malformed, unknown,
/// or out-of-range parameters are [`SpecError::InvalidParam`]. Never a
/// panic.
///
/// ```
/// use pcc_transport::cc::{AckEvent, CongestionControl, Ctx, LossEvent};
/// use pcc_transport::registry::{self, by_name, CcParams, SpecError};
/// use pcc_transport::spec::{ParamKind, ParamSpec};
///
/// // A minimal algorithm, registered with a one-key schema. (Real
/// // algorithms register via their crate's `register_algorithms()`,
/// // installed by `pcc_scenarios::install_registry()` or pcc-udp's twin.)
/// struct Fixed(f64);
/// impl CongestionControl for Fixed {
///     fn name(&self) -> &'static str { "fixed" }
///     fn on_start(&mut self, ctx: &mut Ctx) { ctx.set_rate(self.0); }
///     fn on_ack(&mut self, _: &AckEvent, _: &mut Ctx) {}
///     fn on_loss(&mut self, _: &LossEvent, _: &mut Ctx) {}
/// }
/// registry::register_with_schema(
///     "doc-fixed",
///     &[ParamSpec {
///         key: "rate",
///         kind: ParamKind::Float { min: 1.0, max: 1e9 },
///         doc: "fixed sending rate, bits/sec",
///     }],
///     Box::new(|p| Box::new(Fixed(p.spec.f64("rate").unwrap_or(1e6)))),
/// );
/// let params = CcParams::default();
///
/// // Valid: a bare name and a parameterized spec.
/// assert!(by_name("doc-fixed", &params).is_ok());
/// assert!(by_name("doc-fixed:rate=5e6", &params).is_ok());
///
/// // Invalid: unknown names and bad parameters are typed errors.
/// assert!(matches!(
///     by_name("frobnicate", &params),
///     Err(SpecError::Unknown(e)) if e.name == "frobnicate"
/// ));
/// assert!(matches!(
///     by_name("doc-fixed:rate=0.5", &params),   // out of range
///     Err(SpecError::InvalidParam(e)) if e.key == "rate"
/// ));
/// assert!(matches!(
///     by_name("doc-fixed:bogus=1", &params),    // unknown key
///     Err(SpecError::InvalidParam(_))
/// ));
/// ```
pub fn by_name(name: &str, params: &CcParams) -> Result<Box<dyn CongestionControl>, SpecError> {
    // The base name is extractable even from syntactically broken specs,
    // so "unknown algorithm" always wins over "bad parameter" reporting.
    let parsed = AlgoSpec::parse(name);
    let base = match &parsed {
        Ok(spec) => spec.name.clone(),
        Err(e) => e.name.clone(),
    };
    // Resolve the whole alias chain under one read guard, then drop the
    // guard *before* invoking the factory so factories can never deadlock
    // std's RwLock against a queued writer.
    let resolved = {
        let table = table().read().unwrap_or_else(PoisonError::into_inner);
        match resolve(&table, &base) {
            Some((factory, schema, check)) => {
                Ok((Arc::clone(factory), schema, check.map(Arc::clone)))
            }
            // Whatever made the chain unresolvable — unknown name,
            // dangling target, cycle — report the name the caller asked
            // for, and advertise only names that actually resolve (a
            // broken alias must not appear in its own "registered:" list).
            None => Err(UnknownAlgorithm {
                name: name.to_string(),
                known: table
                    .keys()
                    .filter(|k| resolve(&table, k).is_some())
                    .cloned()
                    .collect(),
            }),
        }
    };
    let (factory, schema, check) = resolved?;
    let spec = parsed.map_err(|e| InvalidParam {
        algo: base.clone(),
        key: e.fragment,
        reason: e.reason,
        valid: describe_schema(schema),
    })?;
    let bag = validate(&spec.name, schema, &spec.params)?;
    if let Some(check) = check {
        check(&bag).map_err(|(key, reason)| InvalidParam {
            algo: base,
            key,
            reason,
            valid: describe_schema(schema),
        })?;
    }
    let mut params = params.clone();
    params.spec = bag;
    Ok(factory(&params))
}

/// Walk `name`'s alias chain to its factory (and schema), if it reaches
/// one within the [`MAX_ALIAS_HOPS`] budget. The single resolver behind
/// both [`by_name`] and the error path's "which names are usable" filter,
/// so the two can never disagree.
#[allow(clippy::type_complexity)]
fn resolve<'t>(
    table: &'t BTreeMap<String, Entry>,
    name: &str,
) -> Option<(&'t Arc<CcFactory>, Schema, Option<&'t Arc<SchemaCheck>>)> {
    let mut current = name;
    for _ in 0..=MAX_ALIAS_HOPS {
        match table.get(current)? {
            Entry::Factory { f, schema, check } => return Some((f, schema, check.as_ref())),
            Entry::Alias(target) => current = target,
        }
    }
    None // budget exhausted: a cycle, or indistinguishable from one
}

/// The parameter schema of a registered name (resolving aliases), if the
/// name resolves. The empty slice means the algorithm takes no
/// parameters. Accepts bare names, not specs.
pub fn schema_of(name: &str) -> Option<Schema> {
    let table = table().read().unwrap_or_else(PoisonError::into_inner);
    resolve(&table, name).map(|(_, schema, _)| schema)
}

/// All registered names, sorted.
pub fn names() -> Vec<String> {
    table()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .keys()
        .cloned()
        .collect()
}

/// True if `name` is registered (exact table key, not a spec).
pub fn contains(name: &str) -> bool {
    table()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .contains_key(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{AckEvent, Ctx, LossEvent};
    use crate::spec::{ParamKind, ParamSpec};

    struct Dummy;
    impl CongestionControl for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(1e6);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
    }

    /// A controller that remembers the spec value it was built with.
    struct Tuned(f64);
    impl CongestionControl for Tuned {
        fn name(&self) -> &'static str {
            "tuned"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(self.0);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
    }

    const TUNED_SCHEMA: Schema = &[ParamSpec {
        key: "rate",
        kind: ParamKind::Float { min: 1.0, max: 1e9 },
        doc: "fixed rate, bits/sec",
    }];

    fn unwrap_unknown(e: SpecError) -> UnknownAlgorithm {
        match e {
            SpecError::Unknown(u) => u,
            SpecError::InvalidParam(p) => panic!("expected Unknown, got InvalidParam: {p}"),
        }
    }

    fn unwrap_invalid(e: SpecError) -> InvalidParam {
        match e {
            SpecError::InvalidParam(p) => p,
            SpecError::Unknown(u) => panic!("expected InvalidParam, got Unknown: {u}"),
        }
    }

    #[test]
    fn lookup_roundtrip_and_typed_error() {
        register("test-dummy", Box::new(|_| Box::new(Dummy)));
        let cc = by_name("test-dummy", &CcParams::default()).expect("registered");
        assert_eq!(cc.name(), "dummy");

        let err = match by_name("no-such-algo", &CcParams::default()) {
            Ok(_) => panic!("lookup must fail"),
            Err(e) => unwrap_unknown(e),
        };
        assert_eq!(err.name, "no-such-algo");
        assert!(err.known.contains(&"test-dummy".to_string()));
        let msg = err.to_string();
        assert!(msg.contains("no-such-algo"), "{msg}");
    }

    #[test]
    fn schema_validates_and_reaches_the_factory() {
        register_with_schema(
            "test-tuned",
            TUNED_SCHEMA,
            Box::new(|p| Box::new(Tuned(p.spec.f64("rate").unwrap_or(1e6)))),
        );
        // Plain name: defaults.
        assert_eq!(
            by_name("test-tuned", &CcParams::default())
                .expect("plain")
                .name(),
            "tuned"
        );
        // Spec value reaches the factory (observable via the rate effect).
        let mut cc = by_name("test-tuned:rate=42", &CcParams::default()).expect("spec");
        let mut rng = pcc_simnet::rng::SimRng::new(1);
        let mut fx = crate::cc::Effects::default();
        cc.on_start(&mut Ctx::new(
            pcc_simnet::time::SimTime::ZERO,
            &mut rng,
            &mut fx,
        ));
        let rate = fx.drain().rate;
        assert_eq!(rate, Some(42.0), "spec value tuned the controller");
        // Empty pair list ≡ plain name.
        assert!(by_name("test-tuned:", &CcParams::default()).is_ok());
    }

    #[test]
    fn invalid_params_are_typed_and_list_valid_keys() {
        register_with_schema("test-strict", TUNED_SCHEMA, Box::new(|_| Box::new(Dummy)));
        for (spec, needle) in [
            ("test-strict:bogus=1", "unknown key"),
            ("test-strict:rate=0.5", "out of range"),
            ("test-strict:rate=abc", "not a float"),
            ("test-strict:rate", "expected `key=value`"),
            ("test-strict:rate=1,rate=2", "duplicate"),
        ] {
            let err = match by_name(spec, &CcParams::default()) {
                Ok(_) => panic!("{spec} must fail"),
                Err(e) => unwrap_invalid(e),
            };
            assert_eq!(err.algo, "test-strict", "{spec}");
            assert!(err.reason.contains(needle), "{spec}: {}", err.reason);
            assert!(
                err.valid.iter().any(|d| d.contains("rate")),
                "{spec}: lists valid keys: {:?}",
                err.valid
            );
        }
        // A no-parameter algorithm says so.
        register("test-bare", Box::new(|_| Box::new(Dummy)));
        let err = match by_name("test-bare:x=1", &CcParams::default()) {
            Ok(_) => panic!("must fail"),
            Err(e) => unwrap_invalid(e),
        };
        assert!(err.valid.is_empty());
        assert!(err.to_string().contains("takes no parameters"), "{err}");
    }

    #[test]
    fn cross_key_checks_reject_ineffective_params() {
        // A SchemaCheck models constraints one key cannot express: here
        // `rate` is only meaningful when `mode=fixed`.
        const CHECKED_SCHEMA: Schema = &[
            ParamSpec {
                key: "rate",
                kind: ParamKind::Float { min: 1.0, max: 1e9 },
                doc: "fixed rate",
            },
            ParamSpec {
                key: "mode",
                kind: ParamKind::Choice(&["fixed", "auto"]),
                doc: "operating mode",
            },
        ];
        register_with_schema_checked(
            "test-checked",
            CHECKED_SCHEMA,
            Box::new(|bag| {
                if bag.choice("mode") == Some("auto") && bag.f64("rate").is_some() {
                    return Err((
                        "rate".to_string(),
                        "has no effect with mode=auto".to_string(),
                    ));
                }
                Ok(())
            }),
            Box::new(|_| Box::new(Dummy)),
        );
        assert!(by_name("test-checked:mode=fixed,rate=5", &CcParams::default()).is_ok());
        assert!(by_name("test-checked:rate=5", &CcParams::default()).is_ok());
        let err = match by_name("test-checked:mode=auto,rate=5", &CcParams::default()) {
            Ok(_) => panic!("ineffective key must fail"),
            Err(e) => unwrap_invalid(e),
        };
        assert_eq!(err.key, "rate");
        assert!(err.reason.contains("no effect"), "{err}");
        assert!(err.valid.iter().any(|k| k.contains("mode")), "{err}");
    }

    #[test]
    fn unknown_base_name_wins_over_bad_params() {
        // `nosuch:eps=banana` reports the unknown algorithm, not the
        // unparseable parameter — the caller's first mistake.
        let err = match by_name("nosuch-algo:eps=banana", &CcParams::default()) {
            Ok(_) => panic!("must fail"),
            Err(e) => unwrap_unknown(e),
        };
        assert_eq!(err.name, "nosuch-algo:eps=banana");
    }

    #[test]
    fn schema_of_resolves_aliases() {
        register_with_schema(
            "test-schema-target",
            TUNED_SCHEMA,
            Box::new(|_| Box::new(Dummy)),
        );
        register_alias("test-schema-alias", "test-schema-target");
        let schema = schema_of("test-schema-alias").expect("alias resolves");
        assert_eq!(schema.len(), 1);
        assert_eq!(schema[0].key, "rate");
        // And specs through the alias validate against the target schema.
        assert!(by_name("test-schema-alias:rate=2", &CcParams::default()).is_ok());
        assert!(by_name("test-schema-alias:bogus=2", &CcParams::default()).is_err());
        assert!(schema_of("test-no-such-name").is_none());
    }

    #[test]
    fn aliases_resolve_to_target() {
        register("test-target", Box::new(|_| Box::new(Dummy)));
        register_alias("test-alias", "test-target");
        let cc = by_name("test-alias", &CcParams::default()).expect("alias works");
        assert_eq!(cc.name(), "dummy");
        assert!(contains("test-alias"));
    }

    #[test]
    fn alias_chains_resolve_within_the_hop_budget() {
        register("chain-0", Box::new(|_| Box::new(Dummy)));
        for i in 1..=5 {
            register_alias(&format!("chain-{i}"), &format!("chain-{}", i - 1));
        }
        let cc = by_name("chain-5", &CcParams::default()).expect("deep chain");
        assert_eq!(cc.name(), "dummy");
    }

    #[test]
    fn cyclic_aliases_are_a_typed_error_not_a_crash() {
        // Regression: `a → b → a` used to recurse unboundedly through the
        // alias factories and overflow the stack on the first lookup.
        register_alias("cycle-a", "cycle-b");
        register_alias("cycle-b", "cycle-a");
        for name in ["cycle-a", "cycle-b"] {
            let err = match by_name(name, &CcParams::default()) {
                Ok(_) => panic!("cycle must not resolve"),
                Err(e) => unwrap_unknown(e),
            };
            assert_eq!(err.name, name);
            // The error must not advertise the unresolvable names as
            // registered — that message would contradict itself.
            assert!(!err.known.contains(&"cycle-a".to_string()), "{err}");
            assert!(!err.known.contains(&"cycle-b".to_string()), "{err}");
        }
    }

    #[test]
    fn self_alias_is_a_typed_error() {
        // An alias shadowing its own target is the one-hop cycle.
        register_alias("self-alias", "self-alias");
        let err = match by_name("self-alias", &CcParams::default()) {
            Ok(_) => panic!("self-cycle must not resolve"),
            Err(e) => unwrap_unknown(e),
        };
        assert_eq!(err.name, "self-alias");
        assert!(err.to_string().contains("self-alias"));
    }

    #[test]
    fn dangling_alias_reports_the_requested_name() {
        register_alias("dangling", "no-such-target");
        let err = match by_name("dangling", &CcParams::default()) {
            Ok(_) => panic!("dangling alias must not resolve"),
            Err(e) => unwrap_unknown(e),
        };
        // The caller typed `dangling`; that is the name the error must
        // carry (and must not advertise as registered).
        assert_eq!(err.name, "dangling");
        assert!(!err.known.contains(&"dangling".to_string()), "{err}");
    }

    #[test]
    fn poisoned_table_recovers_instead_of_cascading() {
        // A panic while holding the write guard poisons the lock; the
        // registry must keep serving (the table is always consistent —
        // every write is a single insert). Before the fix, this panicked
        // every subsequent test in the process.
        register("test-poison-pre", Box::new(|_| Box::new(Dummy)));
        let _ = std::panic::catch_unwind(|| {
            let _guard = table().write().unwrap_or_else(PoisonError::into_inner);
            panic!("poison the registry lock");
        });
        assert!(table().is_poisoned(), "lock is genuinely poisoned");
        // Reads, writes, and lookups all still work.
        assert!(contains("test-poison-pre"));
        register("test-poison-post", Box::new(|_| Box::new(Dummy)));
        assert!(by_name("test-poison-post", &CcParams::default()).is_ok());
        assert!(!names().is_empty());
        assert!(schema_of("test-poison-post").is_some());
        // Clear the flag for any test that runs later in this process.
        table().clear_poison();
    }
}
