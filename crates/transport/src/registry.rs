//! Datapath-agnostic algorithm registry.
//!
//! Every congestion-control algorithm in the workspace registers a named
//! factory here; anything that needs a sender — the scenario builders, the
//! experiments binary, the real-UDP datapath — resolves algorithms through
//! [`by_name`] and receives a `Box<dyn CongestionControl>` it can hand to
//! any engine. Lookups of unknown names return a typed
//! [`UnknownAlgorithm`] error (never a panic), which lists the registered
//! names for discoverability.
//!
//! Registration is explicit because the algorithm crates sit *above* this
//! crate in the dependency graph (they implement the trait defined here):
//! each of `pcc-core`, `pcc-tcp`, and `pcc-rate` exposes a
//! `register_algorithms()` function, and the aggregation layers
//! (`pcc-scenarios`' `install_registry`, the `pcc` facade) call them once
//! at startup. Registering the same name twice is idempotent by design
//! (last registration wins), so multiple entry points may install the
//! defaults without coordination.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use pcc_simnet::time::SimDuration;

use crate::cc::CongestionControl;

/// Construction parameters handed to algorithm factories.
#[derive(Clone, Copy, Debug)]
pub struct CcParams {
    /// Packet size on the wire, bytes.
    pub mss: u32,
    /// A-priori RTT estimate for algorithms that need one before the first
    /// sample (PCC's starting rate, paced-TCP's initial pacing rate).
    pub rtt_hint: SimDuration,
}

impl Default for CcParams {
    fn default() -> Self {
        CcParams {
            mss: 1500,
            rtt_hint: SimDuration::from_millis(100),
        }
    }
}

impl CcParams {
    /// Set the RTT hint.
    pub fn with_rtt_hint(mut self, rtt: SimDuration) -> Self {
        self.rtt_hint = rtt;
        self
    }

    /// Set the MSS.
    pub fn with_mss(mut self, mss: u32) -> Self {
        self.mss = mss;
        self
    }
}

/// A named algorithm constructor.
pub type CcFactory = Box<dyn Fn(&CcParams) -> Box<dyn CongestionControl> + Send + Sync>;

/// Lookup failure: the requested name is not registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm {
    /// The name that failed to resolve.
    pub name: String,
    /// Names that *do* resolve to a constructor, sorted (empty if nothing
    /// registered yet — a hint that no `register_algorithms()` ran).
    /// Broken aliases (cyclic or dangling) are excluded, so the error
    /// never lists its own subject as available.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.known.is_empty() {
            write!(
                f,
                "unknown congestion-control algorithm `{}` (registry is empty — was \
                 install_registry()/register_algorithms() called?)",
                self.name
            )
        } else {
            write!(
                f,
                "unknown congestion-control algorithm `{}`; registered: {}",
                self.name,
                self.known.join(", ")
            )
        }
    }
}

impl std::error::Error for UnknownAlgorithm {}

/// A table entry: a real constructor, or an alias naming another entry.
/// Aliases are *data*, resolved iteratively inside [`by_name`] — an alias
/// factory that re-entered `by_name` would recurse without bound on a
/// cycle (`a → b → a`, or an alias shadowing its own target) and blow the
/// stack.
enum Entry {
    Factory(Arc<CcFactory>),
    Alias(String),
}

/// Alias-chain hop budget. Real registries alias one or two hops deep;
/// anything past this is a cycle (or indistinguishable from one) and
/// resolves to the typed error instead of crashing.
const MAX_ALIAS_HOPS: usize = 16;

fn table() -> &'static RwLock<BTreeMap<String, Entry>> {
    static TABLE: OnceLock<RwLock<BTreeMap<String, Entry>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Register (or replace) a named algorithm factory.
pub fn register(name: &str, factory: CcFactory) {
    table()
        .write()
        .expect("registry poisoned")
        .insert(name.to_string(), Entry::Factory(Arc::new(factory)));
}

/// Register `alias` to resolve to whatever `target` names at lookup time.
/// Cyclic alias chains (including self-aliases) are tolerated at
/// registration and surface as a typed [`UnknownAlgorithm`] from
/// [`by_name`], never a crash.
pub fn register_alias(alias: &str, target: &str) {
    table()
        .write()
        .expect("registry poisoned")
        .insert(alias.to_string(), Entry::Alias(target.to_string()));
}

/// Construct an algorithm by name. Unknown names — and unresolvable alias
/// chains (dangling, cyclic, or deeper than [`MAX_ALIAS_HOPS`]) — are a
/// typed error, never a panic.
pub fn by_name(
    name: &str,
    params: &CcParams,
) -> Result<Box<dyn CongestionControl>, UnknownAlgorithm> {
    // Resolve the whole alias chain under one read guard, then drop the
    // guard *before* invoking the factory so factories can never deadlock
    // std's RwLock against a queued writer.
    let resolved = {
        let table = table().read().expect("registry poisoned");
        match resolve(&table, name) {
            Some(factory) => Ok(Arc::clone(factory)),
            // Whatever made the chain unresolvable — unknown name,
            // dangling target, cycle — report the name the caller asked
            // for, and advertise only names that actually resolve (a
            // broken alias must not appear in its own "registered:" list).
            None => Err(UnknownAlgorithm {
                name: name.to_string(),
                known: table
                    .keys()
                    .filter(|k| resolve(&table, k).is_some())
                    .cloned()
                    .collect(),
            }),
        }
    };
    resolved.map(|factory| factory(params))
}

/// Walk `name`'s alias chain to its factory, if it reaches one within the
/// [`MAX_ALIAS_HOPS`] budget. The single resolver behind both [`by_name`]
/// and the error path's "which names are usable" filter, so the two can
/// never disagree.
fn resolve<'t>(table: &'t BTreeMap<String, Entry>, name: &str) -> Option<&'t Arc<CcFactory>> {
    let mut current = name;
    for _ in 0..=MAX_ALIAS_HOPS {
        match table.get(current)? {
            Entry::Factory(factory) => return Some(factory),
            Entry::Alias(target) => current = target,
        }
    }
    None // budget exhausted: a cycle, or indistinguishable from one
}

/// All registered names, sorted.
pub fn names() -> Vec<String> {
    table()
        .read()
        .expect("registry poisoned")
        .keys()
        .cloned()
        .collect()
}

/// True if `name` is registered.
pub fn contains(name: &str) -> bool {
    table()
        .read()
        .expect("registry poisoned")
        .contains_key(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{AckEvent, Ctx, LossEvent};

    struct Dummy;
    impl CongestionControl for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(1e6);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
    }

    #[test]
    fn lookup_roundtrip_and_typed_error() {
        register("test-dummy", Box::new(|_| Box::new(Dummy)));
        let cc = by_name("test-dummy", &CcParams::default()).expect("registered");
        assert_eq!(cc.name(), "dummy");

        let err = match by_name("no-such-algo", &CcParams::default()) {
            Ok(_) => panic!("lookup must fail"),
            Err(e) => e,
        };
        assert_eq!(err.name, "no-such-algo");
        assert!(err.known.contains(&"test-dummy".to_string()));
        let msg = err.to_string();
        assert!(msg.contains("no-such-algo"), "{msg}");
    }

    #[test]
    fn aliases_resolve_to_target() {
        register("test-target", Box::new(|_| Box::new(Dummy)));
        register_alias("test-alias", "test-target");
        let cc = by_name("test-alias", &CcParams::default()).expect("alias works");
        assert_eq!(cc.name(), "dummy");
        assert!(contains("test-alias"));
    }

    #[test]
    fn alias_chains_resolve_within_the_hop_budget() {
        register("chain-0", Box::new(|_| Box::new(Dummy)));
        for i in 1..=5 {
            register_alias(&format!("chain-{i}"), &format!("chain-{}", i - 1));
        }
        let cc = by_name("chain-5", &CcParams::default()).expect("deep chain");
        assert_eq!(cc.name(), "dummy");
    }

    #[test]
    fn cyclic_aliases_are_a_typed_error_not_a_crash() {
        // Regression: `a → b → a` used to recurse unboundedly through the
        // alias factories and overflow the stack on the first lookup.
        register_alias("cycle-a", "cycle-b");
        register_alias("cycle-b", "cycle-a");
        for name in ["cycle-a", "cycle-b"] {
            let err = match by_name(name, &CcParams::default()) {
                Ok(_) => panic!("cycle must not resolve"),
                Err(e) => e,
            };
            assert_eq!(err.name, name);
            // The error must not advertise the unresolvable names as
            // registered — that message would contradict itself.
            assert!(!err.known.contains(&"cycle-a".to_string()), "{err}");
            assert!(!err.known.contains(&"cycle-b".to_string()), "{err}");
        }
    }

    #[test]
    fn self_alias_is_a_typed_error() {
        // An alias shadowing its own target is the one-hop cycle.
        register_alias("self-alias", "self-alias");
        let err = match by_name("self-alias", &CcParams::default()) {
            Ok(_) => panic!("self-cycle must not resolve"),
            Err(e) => e,
        };
        assert_eq!(err.name, "self-alias");
        assert!(err.to_string().contains("self-alias"));
    }

    #[test]
    fn dangling_alias_reports_the_requested_name() {
        register_alias("dangling", "no-such-target");
        let err = match by_name("dangling", &CcParams::default()) {
            Ok(_) => panic!("dangling alias must not resolve"),
            Err(e) => e,
        };
        // The caller typed `dangling`; that is the name the error must
        // carry (and must not advertise as registered).
        assert_eq!(err.name, "dangling");
        assert!(!err.known.contains(&"dangling".to_string()), "{err}");
    }
}
