//! Datapath-agnostic algorithm registry.
//!
//! Every congestion-control algorithm in the workspace registers a named
//! factory here; anything that needs a sender — the scenario builders, the
//! experiments binary, the real-UDP datapath — resolves algorithms through
//! [`by_name`] and receives a `Box<dyn CongestionControl>` it can hand to
//! any engine. Lookups of unknown names return a typed
//! [`UnknownAlgorithm`] error (never a panic), which lists the registered
//! names for discoverability.
//!
//! Registration is explicit because the algorithm crates sit *above* this
//! crate in the dependency graph (they implement the trait defined here):
//! each of `pcc-core`, `pcc-tcp`, and `pcc-rate` exposes a
//! `register_algorithms()` function, and the aggregation layers
//! (`pcc-scenarios`' `install_registry`, the `pcc` facade) call them once
//! at startup. Registering the same name twice is idempotent by design
//! (last registration wins), so multiple entry points may install the
//! defaults without coordination.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use pcc_simnet::time::SimDuration;

use crate::cc::CongestionControl;

/// Construction parameters handed to algorithm factories.
#[derive(Clone, Copy, Debug)]
pub struct CcParams {
    /// Packet size on the wire, bytes.
    pub mss: u32,
    /// A-priori RTT estimate for algorithms that need one before the first
    /// sample (PCC's starting rate, paced-TCP's initial pacing rate).
    pub rtt_hint: SimDuration,
}

impl Default for CcParams {
    fn default() -> Self {
        CcParams {
            mss: 1500,
            rtt_hint: SimDuration::from_millis(100),
        }
    }
}

impl CcParams {
    /// Set the RTT hint.
    pub fn with_rtt_hint(mut self, rtt: SimDuration) -> Self {
        self.rtt_hint = rtt;
        self
    }

    /// Set the MSS.
    pub fn with_mss(mut self, mss: u32) -> Self {
        self.mss = mss;
        self
    }
}

/// A named algorithm constructor.
pub type CcFactory = Box<dyn Fn(&CcParams) -> Box<dyn CongestionControl> + Send + Sync>;

/// Lookup failure: the requested name is not registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAlgorithm {
    /// The name that failed to resolve.
    pub name: String,
    /// Names that *are* registered, sorted (empty if nothing registered
    /// yet — a hint that no `register_algorithms()` ran).
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.known.is_empty() {
            write!(
                f,
                "unknown congestion-control algorithm `{}` (registry is empty — was \
                 install_registry()/register_algorithms() called?)",
                self.name
            )
        } else {
            write!(
                f,
                "unknown congestion-control algorithm `{}`; registered: {}",
                self.name,
                self.known.join(", ")
            )
        }
    }
}

impl std::error::Error for UnknownAlgorithm {}

fn table() -> &'static RwLock<BTreeMap<String, Arc<CcFactory>>> {
    static TABLE: OnceLock<RwLock<BTreeMap<String, Arc<CcFactory>>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Register (or replace) a named algorithm factory.
pub fn register(name: &str, factory: CcFactory) {
    table()
        .write()
        .expect("registry poisoned")
        .insert(name.to_string(), Arc::new(factory));
}

/// Register the same factory under an alias.
pub fn register_alias(alias: &str, target: &str) {
    let target = target.to_string();
    register(
        alias,
        Box::new(move |params| {
            by_name(&target, params).expect("alias target registered before alias")
        }),
    );
}

/// Construct an algorithm by name. Unknown names are a typed error, never
/// a panic.
pub fn by_name(
    name: &str,
    params: &CcParams,
) -> Result<Box<dyn CongestionControl>, UnknownAlgorithm> {
    // Clone the factory handle and drop the guard *before* invoking it:
    // alias factories re-enter `by_name`, and a recursive read acquisition
    // can deadlock std's RwLock whenever a writer is queued between them.
    let resolved = {
        let table = table().read().expect("registry poisoned");
        match table.get(name) {
            Some(factory) => Ok(Arc::clone(factory)),
            None => Err(UnknownAlgorithm {
                name: name.to_string(),
                known: table.keys().cloned().collect(),
            }),
        }
    };
    resolved.map(|factory| factory(params))
}

/// All registered names, sorted.
pub fn names() -> Vec<String> {
    table()
        .read()
        .expect("registry poisoned")
        .keys()
        .cloned()
        .collect()
}

/// True if `name` is registered.
pub fn contains(name: &str) -> bool {
    table()
        .read()
        .expect("registry poisoned")
        .contains_key(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{AckEvent, Ctx, LossEvent};

    struct Dummy;
    impl CongestionControl for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(1e6);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
    }

    #[test]
    fn lookup_roundtrip_and_typed_error() {
        register("test-dummy", Box::new(|_| Box::new(Dummy)));
        let cc = by_name("test-dummy", &CcParams::default()).expect("registered");
        assert_eq!(cc.name(), "dummy");

        let err = match by_name("no-such-algo", &CcParams::default()) {
            Ok(_) => panic!("lookup must fail"),
            Err(e) => e,
        };
        assert_eq!(err.name, "no-such-algo");
        assert!(err.known.contains(&"test-dummy".to_string()));
        let msg = err.to_string();
        assert!(msg.contains("no-such-algo"), "{msg}");
    }

    #[test]
    fn aliases_resolve_to_target() {
        register("test-target", Box::new(|_| Box::new(Dummy)));
        register_alias("test-alias", "test-target");
        let cc = by_name("test-alias", &CcParams::default()).expect("alias works");
        assert_eq!(cc.name(), "dummy");
        assert!(contains("test-alias"));
    }
}
