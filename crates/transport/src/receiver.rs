//! The receiver endpoint: per-packet selective acknowledgement generation.
//!
//! One receiver serves every sender type in this reproduction (PCC, TCP
//! variants, SABUL, PCP): it ACKs every data packet with a selective
//! acknowledgement carrying the cumulative ack point, an echo of the data
//! packet's send timestamp (exact RTT at the sender), and the receiver-side
//! arrival timestamp (used by dispersion-based bandwidth probers). This
//! matches the paper's prototype, which relies on TCP SACK as its only
//! feedback (§2.3: "No receiver change: TCP SACK is enough feedback").

use std::collections::BTreeSet;

use pcc_simnet::endpoint::{Endpoint, EndpointCtx};
use pcc_simnet::packet::{AckInfo, Packet};

/// SACK-generating receiver with duplicate suppression for goodput
/// accounting.
#[derive(Debug, Default)]
pub struct SackReceiver {
    /// All sequences below this point received.
    cum_ack: u64,
    /// Received sequences at or above `cum_ack` (out-of-order buffer).
    ooo: BTreeSet<u64>,
    /// Unique data bytes accepted.
    recv_bytes: u64,
    /// Total data packets seen (including duplicates).
    packets_seen: u64,
    /// Duplicate data packets seen.
    duplicates: u64,
}

impl SackReceiver {
    /// New receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative ack point: all sequences below are received.
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Unique data bytes accepted.
    pub fn recv_bytes(&self) -> u64 {
        self.recv_bytes
    }

    /// Duplicate packets observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    fn accept(&mut self, seq: u64, bytes: u32) -> bool {
        if seq < self.cum_ack || self.ooo.contains(&seq) {
            self.duplicates += 1;
            return false;
        }
        self.ooo.insert(seq);
        // Advance the cumulative point over any now-contiguous prefix.
        while self.ooo.remove(&self.cum_ack) {
            self.cum_ack += 1;
        }
        self.recv_bytes += bytes as u64;
        true
    }
}

impl Endpoint for SackReceiver {
    fn start(&mut self, _ctx: &mut EndpointCtx) {}

    fn on_packet(&mut self, pkt: &Packet, ctx: &mut EndpointCtx) {
        let Some(data) = pkt.as_data() else {
            debug_assert!(false, "receiver got a non-data packet");
            return;
        };
        self.packets_seen += 1;
        let fresh = self.accept(data.seq, pkt.bytes);
        if fresh {
            ctx.record_goodput(pkt.bytes as u64);
        }
        ctx.send_ack(AckInfo {
            acked_seq: data.seq,
            cum_ack: self.cum_ack,
            echo_sent_at: data.sent_at,
            recv_at: ctx.now,
            recv_bytes: self.recv_bytes,
            probe_train: data.probe_train,
            of_retx: data.retx,
        });
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut EndpointCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcc_simnet::endpoint::Action;
    use pcc_simnet::ids::{FlowId, Side};
    use pcc_simnet::rng::SimRng;
    use pcc_simnet::time::SimTime;

    fn drive(rx: &mut SackReceiver, pkt: Packet, now: SimTime) -> Vec<Action> {
        let mut rng = SimRng::new(0);
        let mut actions = Vec::new();
        let mut ctx = EndpointCtx::new(now, FlowId(0), Side::Receiver, &mut rng, &mut actions);
        rx.on_packet(&pkt, &mut ctx);
        actions
    }

    fn data(seq: u64) -> Packet {
        Packet::data(FlowId(0), seq, 1500, SimTime::from_millis(seq), false)
    }

    fn ack_of(actions: &[Action]) -> AckInfo {
        for a in actions {
            if let Action::Send(p) = a {
                return *p.as_ack().expect("receiver sends ACKs");
            }
        }
        panic!("no ack emitted");
    }

    #[test]
    fn acks_every_packet_with_cum_point() {
        let mut rx = SackReceiver::new();
        let a0 = ack_of(&drive(&mut rx, data(0), SimTime::from_millis(10)));
        assert_eq!(a0.acked_seq, 0);
        assert_eq!(a0.cum_ack, 1);
        assert_eq!(a0.echo_sent_at, SimTime::ZERO);
        let a1 = ack_of(&drive(&mut rx, data(1), SimTime::from_millis(11)));
        assert_eq!(a1.cum_ack, 2);
        assert_eq!(a1.recv_bytes, 3000);
    }

    #[test]
    fn out_of_order_holds_cum_ack() {
        let mut rx = SackReceiver::new();
        let a2 = ack_of(&drive(&mut rx, data(2), SimTime::from_millis(1)));
        assert_eq!(a2.acked_seq, 2);
        assert_eq!(a2.cum_ack, 0, "hole at 0");
        let a0 = ack_of(&drive(&mut rx, data(0), SimTime::from_millis(2)));
        assert_eq!(a0.cum_ack, 1, "hole at 1 remains");
        let a1 = ack_of(&drive(&mut rx, data(1), SimTime::from_millis(3)));
        assert_eq!(a1.cum_ack, 3, "contiguous through 2");
    }

    #[test]
    fn duplicates_suppressed_from_goodput() {
        let mut rx = SackReceiver::new();
        let first = drive(&mut rx, data(0), SimTime::from_millis(1));
        assert!(first
            .iter()
            .any(|a| matches!(a, Action::RecordGoodput(1500))));
        let second = drive(&mut rx, data(0), SimTime::from_millis(2));
        assert!(
            !second.iter().any(|a| matches!(a, Action::RecordGoodput(_))),
            "duplicate adds no goodput"
        );
        // But it is still acked (duplicate ACKs drive TCP recovery).
        let a = ack_of(&second);
        assert_eq!(a.acked_seq, 0);
        assert_eq!(rx.duplicates(), 1);
        assert_eq!(rx.recv_bytes(), 1500);
    }

    #[test]
    fn echo_preserves_retx_flag_and_train() {
        let mut rx = SackReceiver::new();
        let mut pkt = Packet::data(FlowId(0), 5, 1500, SimTime::from_millis(9), true);
        if let pcc_simnet::packet::PacketKind::Data(ref mut d) = pkt.kind {
            d.probe_train = Some(7);
        }
        let a = ack_of(&drive(&mut rx, pkt, SimTime::from_millis(12)));
        assert!(a.of_retx);
        assert_eq!(a.probe_train, Some(7));
        assert_eq!(a.echo_sent_at, SimTime::from_millis(9));
        assert_eq!(a.recv_at, SimTime::from_millis(12));
    }
}
