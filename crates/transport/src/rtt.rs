//! RTT estimation per RFC 6298 (SRTT / RTTVAR / RTO).

use pcc_simnet::time::SimDuration;

/// Smoothed RTT estimator with RTO computation.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: SimDuration,
    max_rtt: SimDuration,
    latest: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    samples: u64,
}

impl RttEstimator {
    /// New estimator with the given RTO clamp. The paper-era Linux default
    /// is a 200 ms minimum RTO and 120 s maximum.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: SimDuration::MAX,
            max_rtt: SimDuration::ZERO,
            latest: SimDuration::ZERO,
            min_rto,
            max_rto,
            samples: 0,
        }
    }

    /// Estimator with Linux-like defaults (200 ms min RTO).
    pub fn default_tcp() -> Self {
        Self::new(SimDuration::from_millis(200), SimDuration::from_secs(120))
    }

    /// Feed one RTT sample.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        self.latest = rtt;
        self.min_rtt = self.min_rtt.min(rtt);
        self.max_rtt = self.max_rtt.max(rtt);
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'|
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err.as_nanos()) / 4);
                // SRTT = 7/8 SRTT + 1/8 R'
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + rtt.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Smoothed RTT; `None` until the first sample.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Smoothed RTT, or `fallback` before the first sample.
    pub fn srtt_or(&self, fallback: SimDuration) -> SimDuration {
        self.srtt.unwrap_or(fallback)
    }

    /// Minimum RTT seen (propagation-delay estimate).
    pub fn min_rtt(&self) -> Option<SimDuration> {
        if self.samples == 0 {
            None
        } else {
            Some(self.min_rtt)
        }
    }

    /// Maximum RTT seen.
    pub fn max_rtt(&self) -> Option<SimDuration> {
        if self.samples == 0 {
            None
        } else {
            Some(self.max_rtt)
        }
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<SimDuration> {
        if self.samples == 0 {
            None
        } else {
            Some(self.latest)
        }
    }

    /// Retransmission timeout: `SRTT + 4·RTTVAR`, clamped to the configured
    /// bounds; a conservative 1 s before any sample (RFC 6298 §2.1).
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => SimDuration::from_secs(1).max(self.min_rto),
            Some(srtt) => {
                let raw = srtt + self.rttvar * 4;
                raw.max(self.min_rto).min(self.max_rto)
            }
        }
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default_tcp();
        assert!(e.srtt().is_none());
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.on_sample(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        assert_eq!(e.min_rtt(), Some(ms(100)));
        // RTO = 100 + 4*50 = 300ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn converges_to_constant_rtt() {
        let mut e = RttEstimator::default_tcp();
        for _ in 0..100 {
            e.on_sample(ms(50));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 50.0).abs() < 0.5);
        // Variance decays toward zero, so RTO approaches min_rto.
        assert_eq!(e.rto(), ms(200), "clamped at min RTO");
    }

    #[test]
    fn tracks_min_and_max() {
        let mut e = RttEstimator::default_tcp();
        e.on_sample(ms(80));
        e.on_sample(ms(20));
        e.on_sample(ms(140));
        assert_eq!(e.min_rtt(), Some(ms(20)));
        assert_eq!(e.max_rtt(), Some(ms(140)));
        assert_eq!(e.latest(), Some(ms(140)));
        assert_eq!(e.samples(), 3);
    }

    #[test]
    fn rto_grows_with_variance() {
        let mut stable = RttEstimator::default_tcp();
        let mut jittery = RttEstimator::default_tcp();
        for i in 0..50 {
            stable.on_sample(ms(100));
            jittery.on_sample(ms(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn rto_clamped_to_max() {
        let mut e = RttEstimator::new(ms(200), SimDuration::from_secs(2));
        e.on_sample(SimDuration::from_secs(10));
        assert_eq!(e.rto(), SimDuration::from_secs(2));
    }
}
