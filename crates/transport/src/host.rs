//! The off-path control plane: one controller, many flows.
//!
//! CCP-style architectures run congestion logic outside the datapath: the
//! datapath aggregates measurements ([`crate::report::MeasurementReport`]),
//! ships them to a controller, and applies the decisions that come back.
//! [`CcHost`] is that controller — it owns many [`CongestionControl`]
//! instances keyed by dense [`HostFlowId`]s, consumes per-flow events and
//! reports, and queues the resulting decisions as [`Command`]s that the
//! datapath replays into its own [`Ctx`] via [`CcHost::apply_to`].
//!
//! [`HostedCc`] is the datapath-side stub: it implements
//! [`CongestionControl`] itself, so *any* engine (the simulator's
//! `CcSender`, `pcc-udp`'s real-socket sender) can be pointed at a shared
//! host without modification — each callback is forwarded to the host and
//! the queued commands are drained straight back. One host can drive all
//! concurrent transfers of a process (the paper's millions-of-users shape:
//! flows are cheap slots, the controller is one object).
//!
//! Determinism: the host owns no RNG — every entry point threads the
//! *caller's* per-flow random stream through, so a hosted algorithm makes
//! bit-identical decisions to the same algorithm running in-path.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};

use crate::cc::{
    AckEvent, CcMode, CongestionControl, Ctx, Effects, LossEvent, ReportMode, SentEvent,
};
use crate::report::MeasurementReport;

/// Dense per-host flow identifier. Slots are recycled: removing a flow
/// frees its id for the next [`CcHost::add_flow`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostFlowId(u32);

impl HostFlowId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One decision the controller pushes back to a datapath, replayed in
/// order by [`CcHost::apply_to`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Command {
    /// Set the pacing rate (bits/sec).
    SetRate(f64),
    /// Set the congestion window (packets).
    SetCwnd(f64),
    /// Switch the engine's transmission machinery.
    SetMode(CcMode),
    /// One-shot override of the next report interval.
    SetReportIn(SimDuration),
    /// Arm an algorithm timer with the given token.
    Timer(SimTime, u64),
}

struct Slot {
    cc: Box<dyn CongestionControl>,
    queue: VecDeque<Command>,
    fx: Effects,
}

/// The controller: many congestion-control instances behind dense flow
/// ids, each with a pending command queue.
#[derive(Default)]
pub struct CcHost {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
}

impl CcHost {
    /// An empty host.
    pub fn new() -> Self {
        CcHost::default()
    }

    /// Register an algorithm instance; returns its flow id.
    pub fn add_flow(&mut self, cc: Box<dyn CongestionControl>) -> HostFlowId {
        let slot = Slot {
            cc,
            queue: VecDeque::new(),
            fx: Effects::default(),
        };
        match self.free.pop() {
            Some(ix) => {
                self.slots[ix as usize] = Some(slot);
                HostFlowId(ix)
            }
            None => {
                self.slots.push(Some(slot));
                HostFlowId((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Drop a flow's algorithm instance and recycle its id.
    pub fn remove_flow(&mut self, id: HostFlowId) {
        if let Some(s) = self.slots.get_mut(id.index()) {
            if s.take().is_some() {
                self.free.push(id.0);
            }
        }
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no flows are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_mut(&mut self, id: HostFlowId) -> &mut Slot {
        self.slots
            .get_mut(id.index())
            .and_then(|s| s.as_mut())
            .expect("CcHost: unknown or removed flow id")
    }

    fn slot(&self, id: HostFlowId) -> &Slot {
        self.slots
            .get(id.index())
            .and_then(|s| s.as_ref())
            .expect("CcHost: unknown or removed flow id")
    }

    /// Run one callback on a flow's algorithm and queue its decisions.
    fn with_flow(
        &mut self,
        id: HostFlowId,
        now: SimTime,
        rng: &mut SimRng,
        f: impl FnOnce(&mut dyn CongestionControl, &mut Ctx),
    ) {
        let slot = self.slot_mut(id);
        {
            let mut ctx = Ctx::new(now, rng, &mut slot.fx);
            f(slot.cc.as_mut(), &mut ctx);
        }
        let d = slot.fx.drain();
        if let Some(r) = d.rate {
            slot.queue.push_back(Command::SetRate(r));
        }
        if let Some(w) = d.cwnd {
            slot.queue.push_back(Command::SetCwnd(w));
        }
        if let Some(m) = d.mode {
            slot.queue.push_back(Command::SetMode(m));
        }
        if let Some(ri) = d.report_in {
            slot.queue.push_back(Command::SetReportIn(ri));
        }
        for (at, tok) in d.timers {
            slot.queue.push_back(Command::Timer(at, tok));
        }
    }

    /// Forward flow start.
    pub fn on_start(&mut self, id: HostFlowId, now: SimTime, rng: &mut SimRng) {
        self.with_flow(id, now, rng, |c, cc| c.on_start(cc));
    }

    /// Forward a transmission event.
    pub fn on_sent(&mut self, id: HostFlowId, ev: &SentEvent, rng: &mut SimRng) {
        self.with_flow(id, ev.now, rng, |c, cc| c.on_sent(ev, cc));
    }

    /// Forward an ACK event (per-ACK compatibility path).
    pub fn on_ack(&mut self, id: HostFlowId, ack: &AckEvent, rng: &mut SimRng) {
        self.with_flow(id, ack.now, rng, |c, cc| c.on_ack(ack, cc));
    }

    /// Forward a loss event (per-ACK compatibility path).
    pub fn on_loss(&mut self, id: HostFlowId, loss: &LossEvent, rng: &mut SimRng) {
        self.with_flow(id, loss.now, rng, |c, cc| c.on_loss(loss, cc));
    }

    /// Forward an algorithm timer expiry.
    pub fn on_timer(&mut self, id: HostFlowId, token: u64, now: SimTime, rng: &mut SimRng) {
        self.with_flow(id, now, rng, |c, cc| c.on_timer(token, cc));
    }

    /// Consume one aggregated measurement report — the host's primary diet.
    pub fn on_report(&mut self, id: HostFlowId, rep: &MeasurementReport, rng: &mut SimRng) {
        self.with_flow(id, rep.end, rng, |c, cc| c.on_report(rep, cc));
    }

    /// The flow's engine detected post-outage resumption.
    pub fn on_resume(&mut self, id: HostFlowId, now: SimTime, rng: &mut SimRng) {
        self.with_flow(id, now, rng, |c, cc| c.on_resume(cc));
    }

    /// Replay every queued decision for a flow into a datapath context, in
    /// the order the algorithm issued them.
    pub fn apply_to(&mut self, id: HostFlowId, ctx: &mut Ctx) {
        let slot = self.slot_mut(id);
        while let Some(cmd) = slot.queue.pop_front() {
            match cmd {
                Command::SetRate(r) => ctx.set_rate(r),
                Command::SetCwnd(w) => ctx.set_cwnd(w),
                Command::SetMode(m) => ctx.set_mode(m),
                Command::SetReportIn(d) => ctx.set_report_interval(d),
                Command::Timer(at, tok) => ctx.set_timer(at, tok),
            }
        }
    }

    /// Pending (not yet applied) decisions for a flow.
    pub fn pending(&self, id: HostFlowId) -> usize {
        self.slot(id).queue.len()
    }

    /// The flow's algorithm name.
    pub fn name(&self, id: HostFlowId) -> &'static str {
        self.slot(id).cc.name()
    }

    /// The flow's preferred feedback path.
    pub fn report_mode(&self, id: HostFlowId) -> ReportMode {
        self.slot(id).cc.report_mode()
    }

    /// The flow's current probe tag, if probing.
    pub fn probe_tag(&self, id: HostFlowId) -> Option<u32> {
        self.slot(id).cc.probe_tag()
    }
}

/// A shareable, lock-protected host handle.
pub type SharedHost = Arc<Mutex<CcHost>>;

/// Create a [`SharedHost`] ready to drive many flows.
pub fn shared_host() -> SharedHost {
    Arc::new(Mutex::new(CcHost::new()))
}

/// Datapath-side stub: a [`CongestionControl`] whose brain lives in a
/// (possibly shared) [`CcHost`]. Every engine callback is forwarded to the
/// host, then the host's queued commands are drained back into the
/// engine's context — so the engine cannot tell a hosted algorithm from an
/// in-path one, and one host can drive all of a process's transfers.
///
/// The wrapped flow is removed from the host when the stub is dropped.
pub struct HostedCc {
    host: SharedHost,
    flow: HostFlowId,
    name: &'static str,
}

impl HostedCc {
    /// Register `cc` with `host` and return the datapath stub driving it.
    pub fn new(host: SharedHost, cc: Box<dyn CongestionControl>) -> Self {
        let name = cc.name();
        let flow = lock(&host).add_flow(cc);
        HostedCc { host, flow, name }
    }

    /// The flow id inside the host.
    pub fn flow(&self) -> HostFlowId {
        self.flow
    }
}

/// Mutex recovery per the workspace convention: a poisoned host is still
/// structurally sound (algorithm state may be mid-update, but every field
/// is a valid value), so keep serving rather than wedging every flow.
fn lock(host: &SharedHost) -> MutexGuard<'_, CcHost> {
    host.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Drop for HostedCc {
    fn drop(&mut self) {
        lock(&self.host).remove_flow(self.flow);
    }
}

impl CongestionControl for HostedCc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_start(self.flow, ctx.now, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn on_sent(&mut self, ev: &SentEvent, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_sent(self.flow, ev, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_ack(self.flow, ack, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_loss(self.flow, loss, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_timer(self.flow, token, ctx.now, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_report(self.flow, rep, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn on_resume(&mut self, ctx: &mut Ctx) {
        let mut h = lock(&self.host);
        h.on_resume(self.flow, ctx.now, &mut *ctx.rng);
        h.apply_to(self.flow, ctx);
    }

    fn report_mode(&self) -> ReportMode {
        lock(&self.host).report_mode(self.flow)
    }

    fn probe_tag(&self) -> Option<u32> {
        lock(&self.host).probe_tag(self.flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy algorithm: sets a rate at start, halves it on every report with
    /// losses, arms a timer tagged 7.
    struct Toy {
        rate: f64,
    }

    impl CongestionControl for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_rate(self.rate);
            ctx.set_timer(SimTime::from_millis(10), 7);
        }
        fn on_ack(&mut self, _ack: &AckEvent, _ctx: &mut Ctx) {}
        fn on_loss(&mut self, _loss: &LossEvent, _ctx: &mut Ctx) {}
        fn report_mode(&self) -> ReportMode {
            ReportMode::batched_rtt()
        }
        fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut Ctx) {
            if rep.lost_pkts > 0 {
                self.rate /= 2.0;
            }
            ctx.set_rate(self.rate);
        }
    }

    #[test]
    fn commands_queue_and_replay_in_order() {
        let mut host = CcHost::new();
        let id = host.add_flow(Box::new(Toy { rate: 1e6 }));
        let mut rng = SimRng::new(1);
        host.on_start(id, SimTime::ZERO, &mut rng);
        assert_eq!(host.pending(id), 2, "rate + timer queued");
        let mut fx = Effects::default();
        let mut rng2 = SimRng::new(2);
        let mut ctx = Ctx::new(SimTime::ZERO, &mut rng2, &mut fx);
        host.apply_to(id, &mut ctx);
        assert_eq!(host.pending(id), 0);
        let d = fx.drain();
        assert_eq!(d.rate, Some(1e6));
        assert_eq!(d.timers, vec![(SimTime::from_millis(10), 7)]);
    }

    #[test]
    fn report_consumption_drives_decisions() {
        let mut host = CcHost::new();
        let id = host.add_flow(Box::new(Toy { rate: 8e6 }));
        let mut rng = SimRng::new(1);
        let rep = MeasurementReport {
            lost_pkts: 3,
            end: SimTime::from_millis(50),
            ..Default::default()
        };
        host.on_report(id, &rep, &mut rng);
        let mut fx = Effects::default();
        let mut rng2 = SimRng::new(2);
        let mut ctx = Ctx::new(rep.end, &mut rng2, &mut fx);
        host.apply_to(id, &mut ctx);
        assert_eq!(fx.drain().rate, Some(4e6));
    }

    #[test]
    fn dense_ids_recycle() {
        let mut host = CcHost::new();
        let a = host.add_flow(Box::new(Toy { rate: 1.0 }));
        let b = host.add_flow(Box::new(Toy { rate: 1.0 }));
        assert_eq!((a.index(), b.index()), (0, 1));
        host.remove_flow(a);
        assert_eq!(host.len(), 1);
        let c = host.add_flow(Box::new(Toy { rate: 1.0 }));
        assert_eq!(c.index(), 0, "freed slot reused");
        assert_eq!(host.len(), 2);
    }

    #[test]
    fn middle_flow_dies_mid_transfer_without_disturbing_siblings() {
        let mut host = CcHost::new();
        let mut rng = SimRng::new(1);
        let a = host.add_flow(Box::new(Toy { rate: 1e6 }));
        let b = host.add_flow(Box::new(Toy { rate: 2e6 }));
        let c = host.add_flow(Box::new(Toy { rate: 3e6 }));
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        for &id in &[a, b, c] {
            host.on_start(id, SimTime::ZERO, &mut rng);
        }
        // The middle flow dies mid-transfer (its sender aborted); its
        // queued-but-undelivered decisions die with it.
        host.remove_flow(b);
        assert_eq!(host.len(), 2);
        // Siblings keep processing under their original dense ids.
        let rep = MeasurementReport {
            lost_pkts: 1,
            end: SimTime::from_millis(50),
            ..Default::default()
        };
        host.on_report(a, &rep, &mut rng);
        host.on_report(c, &rep, &mut rng);
        for (id, want) in [(a, 0.5e6), (c, 1.5e6)] {
            let mut fx = Effects::default();
            let mut rng2 = SimRng::new(2);
            let mut ctx = Ctx::new(rep.end, &mut rng2, &mut fx);
            host.apply_to(id, &mut ctx);
            assert_eq!(fx.drain().rate, Some(want), "sibling state undisturbed");
        }
        // The freed id is recycled by the next arrival — no renumbering.
        let d = host.add_flow(Box::new(Toy { rate: 9e6 }));
        assert_eq!(d.index(), 1, "middle slot recycled");
        assert_eq!(host.len(), 3);
    }

    #[test]
    fn hosted_stub_forwards_and_cleans_up() {
        let host = shared_host();
        let mut stub = HostedCc::new(Arc::clone(&host), Box::new(Toy { rate: 2e6 }));
        assert_eq!(stub.name(), "toy");
        assert_eq!(stub.report_mode(), ReportMode::batched_rtt());
        assert_eq!(lock(&host).len(), 1);
        let mut fx = Effects::default();
        let mut rng = SimRng::new(3);
        {
            let mut ctx = Ctx::new(SimTime::ZERO, &mut rng, &mut fx);
            stub.on_start(&mut ctx);
        }
        let d = fx.drain();
        assert_eq!(d.rate, Some(2e6), "decision came back through the stub");
        drop(stub);
        assert!(lock(&host).is_empty(), "drop removed the flow");
    }
}
