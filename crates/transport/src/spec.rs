//! Parameterized algorithm specs: `"name:key=val,key=val"` strings, the
//! per-algorithm parameter schemas they are validated against, and the
//! typed value bag validated specs produce.
//!
//! A *spec* is how callers ask the [`crate::registry`] for an algorithm at
//! a non-default operating point — `"pcc:eps=0.05,util=latency"`,
//! `"cubic:beta=0.7,iw=32"`, `"bbr:probe_rtt_ms=5000"`. The grammar:
//!
//! ```text
//! spec   := name [ ":" pairs ]
//! pairs  := "" | pair ("," pair)*
//! pair   := key "=" value
//! ```
//!
//! `"name:"` with an empty pair list is equivalent to plain `"name"`.
//! Parsing never panics on any input; syntactic garbage and semantic
//! violations (unknown key, out-of-range or mistyped value) both surface
//! as a typed [`InvalidParam`] that lists the algorithm's valid keys.
//!
//! Each registered algorithm carries a [`Schema`] (see
//! [`crate::registry::register_with_schema`]) declaring its keys, their
//! types/ranges, and one-line docs. Validation happens inside
//! [`crate::registry::by_name`], so factories receive a pre-validated
//! [`SpecParams`] bag on [`crate::registry::CcParams`] and never need to
//! re-check or fail.

use std::collections::BTreeMap;

/// The type and admissible range of one spec parameter.
#[derive(Clone, Copy, Debug)]
pub enum ParamKind {
    /// A finite float in `[min, max]`.
    Float {
        /// Smallest admissible value.
        min: f64,
        /// Largest admissible value.
        max: f64,
    },
    /// An integer in `[min, max]`.
    Int {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
    },
    /// `true` or `false`.
    Bool,
    /// One of a fixed set of identifiers.
    Choice(&'static [&'static str]),
}

impl ParamKind {
    /// Compact human-readable description (`float 0.001..=0.5`,
    /// `one of safe|simple|...`).
    pub fn describe(&self) -> String {
        match self {
            ParamKind::Float { min, max } => format!("float {min}..={max}"),
            ParamKind::Int { min, max } => format!("int {min}..={max}"),
            ParamKind::Bool => "bool".to_string(),
            ParamKind::Choice(opts) => format!("one of {}", opts.join("|")),
        }
    }
}

/// One schema entry: a key an algorithm accepts.
#[derive(Clone, Copy, Debug)]
pub struct ParamSpec {
    /// The key as written in spec strings.
    pub key: &'static str,
    /// Type and range.
    pub kind: ParamKind,
    /// One-line description for docs and error messages.
    pub doc: &'static str,
}

/// A per-algorithm parameter schema: the set of keys it accepts. The
/// empty schema means the algorithm takes no parameters.
pub type Schema = &'static [ParamSpec];

/// A cross-key validation hook, run by the registry after every key has
/// individually validated against the [`Schema`]. Use it for constraints
/// one key cannot express — e.g. "`alpha` has no effect when
/// `util=simple`". Returns the offending key and the reason; the
/// registry wraps both into an [`InvalidParam`] that lists the valid
/// keys, so a parameter that cannot take effect is rejected exactly like
/// an unknown one.
pub type SchemaCheck = dyn Fn(&SpecParams) -> Result<(), (String, String)> + Send + Sync;

/// A validated, typed parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// Validated [`ParamKind::Float`].
    Float(f64),
    /// Validated [`ParamKind::Int`].
    Int(i64),
    /// Validated [`ParamKind::Bool`].
    Bool(bool),
    /// Validated [`ParamKind::Choice`] — the canonical option string.
    Choice(&'static str),
}

/// The typed key/value bag a validated spec produces, carried to the
/// algorithm factory on [`crate::registry::CcParams::spec`]. All lookups
/// are by key; values are pre-validated against the algorithm's
/// [`Schema`], so factories can trust types and ranges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpecParams {
    vals: BTreeMap<String, ParamValue>,
}

impl SpecParams {
    /// The float value of `key` (integer values coerce), if present.
    pub fn f64(&self, key: &str) -> Option<f64> {
        match self.vals.get(key)? {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The integer value of `key`, if present.
    pub fn i64(&self, key: &str) -> Option<i64> {
        match self.vals.get(key)? {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The non-negative integer value of `key`, if present.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.i64(key).and_then(|v| u64::try_from(v).ok())
    }

    /// The boolean value of `key`, if present.
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.vals.get(key)? {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The choice value of `key`, if present.
    pub fn choice(&self, key: &str) -> Option<&'static str> {
        match self.vals.get(key)? {
            ParamValue::Choice(v) => Some(v),
            _ => None,
        }
    }

    /// True when the bag carries no parameters (plain-name construction).
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Number of parameters in the bag.
    pub fn len(&self) -> usize {
        self.vals.len()
    }
}

/// A parsed (but not yet validated) spec: the algorithm name plus raw
/// `key=value` pairs in source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlgoSpec {
    /// The algorithm (or alias) name before the `:`.
    pub name: String,
    /// Raw `key=value` pairs, unvalidated.
    pub params: Vec<(String, String)>,
}

/// Syntactic parse failure. Carries the name portion (everything before
/// the first `:`) so the caller can still attribute the error to an
/// algorithm and list its valid keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecSyntaxError {
    /// The name portion of the unparseable spec.
    pub name: String,
    /// The offending fragment (a pair without `=`, an empty key, ...).
    pub fragment: String,
    /// What went wrong.
    pub reason: String,
}

impl AlgoSpec {
    /// Parse a spec string. Never panics, whatever the input; the empty
    /// pair list (`"pcc:"`) is accepted and equivalent to the plain name.
    ///
    /// ```
    /// use pcc_transport::spec::AlgoSpec;
    ///
    /// // Valid spec strings: a bare name, and name:key=val pairs.
    /// let spec = AlgoSpec::parse("cubic:beta=0.7,iw=32").unwrap();
    /// assert_eq!(spec.name, "cubic");
    /// assert_eq!(spec.params.len(), 2);
    /// assert_eq!(spec.render(), "cubic:beta=0.7,iw=32");
    /// assert_eq!(AlgoSpec::parse("bbr").unwrap().params.len(), 0);
    /// assert_eq!(AlgoSpec::parse("pcc:").unwrap(), AlgoSpec::parse("pcc").unwrap());
    ///
    /// // Invalid spec strings are typed errors, never panics. (Note:
    /// // this is the *syntax* layer — semantic checks such as unknown
    /// // keys or out-of-range values happen against the algorithm's
    /// // schema in `registry::by_name`.)
    /// let err = AlgoSpec::parse("cubic:beta").unwrap_err();
    /// assert_eq!(err.name, "cubic");
    /// assert!(err.reason.contains("expected `key=value`"));
    /// assert!(AlgoSpec::parse("cubic:=1").is_err());      // empty key
    /// assert!(AlgoSpec::parse("cubic:beta=").is_err());   // empty value
    /// ```
    pub fn parse(s: &str) -> Result<AlgoSpec, SpecSyntaxError> {
        let Some((name, rest)) = s.split_once(':') else {
            return Ok(AlgoSpec {
                name: s.to_string(),
                params: Vec::new(),
            });
        };
        let mut params = Vec::new();
        if rest.is_empty() {
            return Ok(AlgoSpec {
                name: name.to_string(),
                params,
            });
        }
        for pair in rest.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(SpecSyntaxError {
                    name: name.to_string(),
                    fragment: pair.to_string(),
                    reason: "expected `key=value`".to_string(),
                });
            };
            if key.is_empty() {
                return Err(SpecSyntaxError {
                    name: name.to_string(),
                    fragment: pair.to_string(),
                    reason: "empty key".to_string(),
                });
            }
            if value.is_empty() {
                return Err(SpecSyntaxError {
                    name: name.to_string(),
                    fragment: pair.to_string(),
                    reason: "empty value".to_string(),
                });
            }
            params.push((key.to_string(), value.to_string()));
        }
        Ok(AlgoSpec {
            name: name.to_string(),
            params,
        })
    }

    /// Canonical string form: `name` when the pair list is empty, else
    /// `name:key=val,...` in the stored order.
    pub fn render(&self) -> String {
        if self.params.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}:{}", self.name, pairs.join(","))
    }
}

/// Semantic spec failure: an unknown key, or a value that fails its key's
/// type/range check. Lists the algorithm's valid keys so the error is
/// self-documenting (empty list = the algorithm takes no parameters).
#[derive(Clone, Debug, PartialEq)]
pub struct InvalidParam {
    /// The algorithm the spec addressed.
    pub algo: String,
    /// The offending key (or raw fragment for syntax errors).
    pub key: String,
    /// What was wrong with it.
    pub reason: String,
    /// The valid keys, rendered as `key=<type range>` (empty when the
    /// algorithm takes no parameters).
    pub valid: Vec<String>,
}

impl std::fmt::Display for InvalidParam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid parameter `{}` for `{}`: {}",
            self.key, self.algo, self.reason
        )?;
        if self.valid.is_empty() {
            write!(f, " (`{}` takes no parameters)", self.algo)
        } else {
            write!(f, "; valid keys: {}", self.valid.join(", "))
        }
    }
}

impl std::error::Error for InvalidParam {}

/// Render a schema's keys for error messages and listings.
pub fn describe_schema(schema: Schema) -> Vec<String> {
    schema
        .iter()
        .map(|p| format!("{}=<{}>", p.key, p.kind.describe()))
        .collect()
}

/// Validate raw `key=value` pairs against `schema`, producing the typed
/// bag. Duplicate keys, unknown keys, and mistyped/out-of-range values
/// are an [`InvalidParam`].
pub fn validate(
    algo: &str,
    schema: Schema,
    raw: &[(String, String)],
) -> Result<SpecParams, InvalidParam> {
    let invalid = |key: &str, reason: String| InvalidParam {
        algo: algo.to_string(),
        key: key.to_string(),
        reason,
        valid: describe_schema(schema),
    };
    let mut vals = BTreeMap::new();
    for (key, value) in raw {
        let Some(spec) = schema.iter().find(|p| p.key == key.as_str()) else {
            return Err(invalid(key, "unknown key".to_string()));
        };
        let parsed = match spec.kind {
            ParamKind::Float { min, max } => match value.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= min && v <= max => ParamValue::Float(v),
                Ok(v) => {
                    return Err(invalid(
                        key,
                        format!("value {v} out of range {min}..={max}"),
                    ))
                }
                Err(_) => return Err(invalid(key, format!("`{value}` is not a float"))),
            },
            ParamKind::Int { min, max } => match value.parse::<i64>() {
                Ok(v) if v >= min && v <= max => ParamValue::Int(v),
                Ok(v) => {
                    return Err(invalid(
                        key,
                        format!("value {v} out of range {min}..={max}"),
                    ))
                }
                Err(_) => return Err(invalid(key, format!("`{value}` is not an integer"))),
            },
            ParamKind::Bool => match value.as_str() {
                "true" => ParamValue::Bool(true),
                "false" => ParamValue::Bool(false),
                _ => return Err(invalid(key, format!("`{value}` is not `true`/`false`"))),
            },
            ParamKind::Choice(opts) => match opts.iter().find(|o| **o == value.as_str()) {
                Some(canon) => ParamValue::Choice(canon),
                None => {
                    return Err(invalid(
                        key,
                        format!("`{value}` is not one of {}", opts.join("|")),
                    ))
                }
            },
        };
        if vals.insert(key.clone(), parsed).is_some() {
            return Err(invalid(key, "duplicate key".to_string()));
        }
    }
    Ok(SpecParams { vals })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: Schema = &[
        ParamSpec {
            key: "eps",
            kind: ParamKind::Float {
                min: 0.001,
                max: 0.5,
            },
            doc: "granularity",
        },
        ParamSpec {
            key: "iw",
            kind: ParamKind::Int { min: 1, max: 1000 },
            doc: "initial window",
        },
        ParamSpec {
            key: "rct",
            kind: ParamKind::Bool,
            doc: "randomized trials",
        },
        ParamSpec {
            key: "util",
            kind: ParamKind::Choice(&["safe", "latency"]),
            doc: "objective",
        },
    ];

    #[test]
    fn plain_name_parses_with_no_params() {
        let s = AlgoSpec::parse("pcc").expect("plain");
        assert_eq!(s.name, "pcc");
        assert!(s.params.is_empty());
        assert_eq!(s.render(), "pcc");
    }

    #[test]
    fn empty_pair_list_is_equivalent_to_plain_name() {
        let bare = AlgoSpec::parse("pcc").expect("plain");
        let colon = AlgoSpec::parse("pcc:").expect("trailing colon");
        assert_eq!(colon.name, bare.name);
        assert_eq!(colon.params, bare.params);
        // Renders back to the canonical (colon-free) form.
        assert_eq!(colon.render(), "pcc");
    }

    #[test]
    fn pairs_parse_in_order() {
        let s = AlgoSpec::parse("pcc:eps=0.05,util=latency").expect("pairs");
        assert_eq!(s.name, "pcc");
        assert_eq!(
            s.params,
            vec![
                ("eps".to_string(), "0.05".to_string()),
                ("util".to_string(), "latency".to_string()),
            ]
        );
        assert_eq!(s.render(), "pcc:eps=0.05,util=latency");
    }

    #[test]
    fn syntax_errors_are_typed() {
        for bad in ["pcc:eps", "pcc:=3", "pcc:eps=", "pcc:a=1,,b=2"] {
            let err = AlgoSpec::parse(bad).expect_err(bad);
            assert_eq!(err.name, "pcc", "{bad}");
        }
    }

    #[test]
    fn validation_types_and_ranges() {
        let raw = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        let bag = validate(
            "x",
            SCHEMA,
            &raw(&[
                ("eps", "0.05"),
                ("iw", "32"),
                ("rct", "false"),
                ("util", "latency"),
            ]),
        )
        .expect("all valid");
        assert_eq!(bag.f64("eps"), Some(0.05));
        assert_eq!(bag.u64("iw"), Some(32));
        assert_eq!(bag.f64("iw"), Some(32.0), "ints coerce to float");
        assert_eq!(bag.bool("rct"), Some(false));
        assert_eq!(bag.choice("util"), Some("latency"));
        assert_eq!(bag.len(), 4);

        for (pairs, needle) in [
            (raw(&[("nope", "1")]), "unknown key"),
            (raw(&[("eps", "0.9")]), "out of range"),
            (raw(&[("eps", "abc")]), "not a float"),
            (raw(&[("iw", "1.5")]), "not an integer"),
            (raw(&[("rct", "yes")]), "not `true`/`false`"),
            (raw(&[("util", "fast")]), "not one of"),
            (raw(&[("eps", "0.01"), ("eps", "0.02")]), "duplicate"),
        ] {
            let err = validate("x", SCHEMA, &pairs).expect_err(needle);
            assert!(err.reason.contains(needle), "{}: {}", needle, err.reason);
            assert_eq!(err.algo, "x");
            assert!(
                err.valid.iter().any(|d| d.contains("eps")),
                "valid keys listed: {:?}",
                err.valid
            );
        }
    }

    #[test]
    fn empty_schema_reports_no_parameters() {
        let err = validate("sab", &[], &[("k".to_string(), "1".to_string())]).expect_err("no keys");
        assert!(err.valid.is_empty());
        assert!(err.to_string().contains("takes no parameters"), "{err}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Identifier-ish strings free of the grammar's delimiters.
    fn ident(rng_byte: &[u8]) -> String {
        const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-.";
        rng_byte
            .iter()
            .map(|b| ALPHA[(*b as usize) % ALPHA.len()] as char)
            .collect()
    }

    proptest! {
        /// Arbitrary junk never panics the parser (and rendering whatever
        /// *does* parse re-parses to the same spec).
        #[test]
        fn junk_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            let s = String::from_utf8_lossy(&bytes).into_owned();
            if let Ok(spec) = AlgoSpec::parse(&s) {
                let rendered = spec.render();
                // Canonical forms are a fixed point of parse∘render.
                let again = AlgoSpec::parse(&rendered).expect("canonical re-parses");
                prop_assert_eq!(again, spec);
            }
        }

        /// parse(render(spec)) == spec for specs built from delimiter-free
        /// components.
        #[test]
        fn render_parse_round_trip(
            name_b in proptest::collection::vec(0u8..=255, 1..12),
            pairs_b in proptest::collection::vec(
                (proptest::collection::vec(0u8..=255, 1..8),
                 proptest::collection::vec(0u8..=255, 1..8)),
                0..6),
        ) {
            let spec = AlgoSpec {
                name: ident(&name_b),
                params: pairs_b
                    .iter()
                    .map(|(k, v)| (ident(k), ident(v)))
                    .collect(),
            };
            let parsed = AlgoSpec::parse(&spec.render()).expect("round-trip parses");
            prop_assert_eq!(parsed, spec);
        }

        /// A trailing colon with no pairs is always equivalent to the
        /// plain name.
        #[test]
        fn trailing_colon_equals_plain(name_b in proptest::collection::vec(0u8..=255, 1..12)) {
            let name = ident(&name_b);
            let plain = AlgoSpec::parse(&name).expect("plain");
            let colon = AlgoSpec::parse(&format!("{name}:")).expect("colon");
            prop_assert_eq!(plain, colon);
        }
    }
}
