//! # pcc-transport — transport machinery for the PCC reproduction
//!
//! Substrate shared by every protocol in the evaluation:
//!
//! * [`sack::Scoreboard`] — per-packet fate tracking with RFC 6675-style
//!   reordering-threshold loss detection plus timeout detection.
//! * [`rtt::RttEstimator`] — SRTT/RTTVAR/RTO per RFC 6298.
//! * [`receiver::SackReceiver`] — the single receiver used by all senders
//!   (per-packet selective ACKs; §2.3: "TCP SACK is enough feedback").
//! * [`window::WindowSender`] — TCP engine with the [`window::WindowCc`]
//!   plug-in trait for the baseline algorithms (`pcc-tcp` crate).
//! * [`ratesender::RateSender`] — paced rate-based engine with the
//!   [`ratesender::RateController`] plug-in trait for PCC (`pcc-core`) and
//!   the SABUL/PCP baselines (`pcc-rate`).

#![warn(missing_docs)]

pub mod flow;
pub mod ratesender;
pub mod receiver;
pub mod rtt;
pub mod sack;
pub mod window;

pub use flow::{FlowSize, TransportConfig};
pub use ratesender::{CtrlCtx, CtrlEffects, RateAck, RateController, RateSender, RateSenderConfig};
pub use receiver::SackReceiver;
pub use rtt::RttEstimator;
pub use sack::{AckOutcome, Scoreboard};
pub use window::{CcAck, WindowCc, WindowSender, WindowSenderConfig};
