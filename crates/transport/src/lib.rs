//! # pcc-transport — transport machinery for the PCC reproduction
//!
//! Substrate shared by every protocol in the evaluation, organized around
//! the paper's §3 split: dumb sending machinery below, pluggable control
//! intelligence above.
//!
//! * [`cc::CongestionControl`] — **the** control-plane API: one trait with
//!   a uniform event vocabulary (`on_start` / `on_sent` / `on_ack` /
//!   `on_loss` / `on_timer`) and an effects sink that can set a pacing
//!   rate, a congestion window, or both. PCC, the TCP variants, SABUL and
//!   PCP all implement it; so can BBR-style hybrids that need rate *and*
//!   cwnd.
//! * [`sender::CcSender`] — the one sender engine: SACK reliability plus
//!   transmission scheduling that enforces whatever operating point the
//!   algorithm requested (pacing, window clocking with TSO burstiness and
//!   RTO machinery, or both).
//! * [`registry`] — datapath-agnostic algorithm registry: construct any
//!   registered algorithm via [`registry::by_name`], including
//!   parameterized specs (`"cubic:beta=0.7,iw=32"` — see [`spec`]);
//!   unknown names and invalid parameters are typed
//!   [`registry::SpecError`]s, never a panic.
//! * [`sack::Scoreboard`] — per-packet fate tracking with RFC 6675-style
//!   reordering-threshold loss detection plus timeout detection.
//! * [`rtt::RttEstimator`] — SRTT/RTTVAR/RTO per RFC 6298.
//! * [`receiver::SackReceiver`] — the single receiver used by all senders
//!   (per-packet selective ACKs; §2.3: "TCP SACK is enough feedback").
//!
//! The seed design's two parallel engines (`RateSender` for rate
//! controllers, `WindowSender` for window algorithms) and their two traits
//! are gone; both roles are modes of [`sender::CcSender`], selected by
//! what the algorithm sets in `on_start`.

pub mod cc;
pub mod error;
pub mod flow;
pub mod host;
pub mod receiver;
pub mod registry;
pub mod report;
pub mod rtt;
pub mod sack;
pub mod sender;
pub mod spec;

pub use cc::{
    AckEvent, CcMode, CongestionControl, Ctx, Decisions, Effects, LossEvent, LossKind,
    ReportInterval, ReportMode, SentEvent,
};
pub use error::TransferError;
pub use flow::{FlowSize, TransportConfig};
pub use host::{shared_host, CcHost, Command, HostFlowId, HostedCc, SharedHost};
pub use receiver::SackReceiver;
pub use registry::{CcParams, SpecError, UnknownAlgorithm};
pub use report::{MeasurementReport, ReportAggregator};
pub use rtt::RttEstimator;
pub use sack::{AckOutcome, Scoreboard};
pub use sender::{CcSender, CcSenderConfig};
pub use spec::{AlgoSpec, InvalidParam, ParamKind, ParamSpec, Schema, SpecParams};
