//! Micro-benchmarks: simulator substrate hot paths.
//!
//! `cargo bench -p pcc-bench --bench micro`

use std::hint::black_box;

use pcc_bench::bench;
use pcc_core::{MiMetrics, SafeSigmoid, UtilityFunction};
use pcc_scenarios::{run_single, LinkSetup, Protocol};
use pcc_simnet::event::{Event, EventQueue};
use pcc_simnet::ids::FlowId;
use pcc_simnet::packet::Packet;
use pcc_simnet::queue::{fq_codel, Codel, DropTail, FairQueue, Queue};
use pcc_simnet::time::{SimDuration, SimTime};

fn bench_event_queue() {
    bench("event_queue_push_pop_1k", 20, 20, || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 10_000), Event::Sample);
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
    });
}

fn bench_queues() {
    let pkt = |s: u64| Packet::data(FlowId(s as u32 % 8), s, 1500, SimTime::ZERO, false);
    bench("qdisc_droptail_1k", 20, 20, || {
        let mut q = DropTail::bytes(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
    bench("qdisc_fair_queue_1k", 20, 20, || {
        let mut q = FairQueue::new(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
    bench("qdisc_codel_1k", 20, 20, || {
        let mut q = Codel::bytes(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
    bench("qdisc_fq_codel_1k", 20, 20, || {
        let mut q = fq_codel(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
}

fn bench_utility() {
    let u = SafeSigmoid::default();
    let m = MiMetrics {
        mi_id: 0,
        target_rate_bps: 1e8,
        send_rate_bps: 1e8,
        throughput_bps: 9.7e7,
        loss_rate: 0.012,
        avg_rtt: SimDuration::from_millis(31),
        prev_avg_rtt: Some(SimDuration::from_millis(30)),
        min_rtt: SimDuration::from_millis(30),
        rtt_slope: 0.001,
        duration: SimDuration::from_millis(60),
        started_at: SimTime::ZERO,
        sent: 500,
        acked: 494,
        lost: 6,
    };
    bench("safe_sigmoid_utility", 20, 5, || {
        black_box(u.utility(black_box(&m)));
    });
}

fn bench_full_sim() {
    bench("full_sim_5s_pcc_100mbps", 5, 1, || {
        run_single(
            Protocol::pcc_default(SimDuration::from_millis(30)),
            LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
            SimDuration::from_secs(5),
            1,
        );
    });
    bench("full_sim_5s_cubic_100mbps", 5, 1, || {
        run_single(
            Protocol::Tcp("cubic"),
            LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
            SimDuration::from_secs(5),
            1,
        );
    });
    bench("full_sim_5s_bbr_100mbps", 5, 1, || {
        run_single(
            Protocol::Named("bbr".into()),
            LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
            SimDuration::from_secs(5),
            1,
        );
    });
}

fn main() {
    bench_event_queue();
    bench_queues();
    bench_utility();
    bench_full_sim();
}
