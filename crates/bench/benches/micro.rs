//! Micro-benchmarks: simulator substrate hot paths, plus the
//! machine-readable `BENCH.json` perf baseline.
//!
//! `cargo bench -p pcc-bench --bench micro`
//!
//! Modes (environment variables):
//!
//! * `PCC_BENCH_FAST=1` — CI smoke: fewer samples, smallest experiment
//!   subset.
//! * default — full micro benches + a quick experiment subset timed at
//!   `--jobs 1` vs `--jobs N`.
//! * `PCC_BENCH_FULL=1` — times the *entire* experiment registry both
//!   ways (minutes).
//!
//! Always writes `BENCH.json` (to `$PCC_BENCH_OUT`, default
//! `target/bench/BENCH.json`): per-scenario events/sec and simulated
//! seconds per wall second, and the suite serial-vs-parallel wall clock.

use std::hint::black_box;
use std::time::Instant;

use pcc_bench::bench;
use pcc_bench::report::{BenchReport, Scenario, SuiteTiming};
use pcc_core::{MiMetrics, SafeSigmoid, UtilityFunction};
use pcc_experiments::{registry, runner, Opts};
use pcc_scenarios::perf;
use pcc_scenarios::protocol::Protocol;
use pcc_simnet::event::{Event, EventQueue};
use pcc_simnet::ids::FlowId;
use pcc_simnet::packet::Packet;
use pcc_simnet::queue::{fq_codel, Codel, DropTail, FairQueue, Queue};
use pcc_simnet::rng::SimRng;
use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::report::ReportAggregator;
use pcc_transport::{registry as cc_registry, AckEvent, Ctx, Effects, SentEvent};

fn fast_mode() -> bool {
    std::env::var_os("PCC_BENCH_FAST").is_some_and(|v| v != "0")
}

fn full_mode() -> bool {
    std::env::var_os("PCC_BENCH_FULL").is_some_and(|v| v != "0")
}

fn bench_event_queue() {
    bench("event_queue_push_pop_1k", 20, 20, || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 10_000), Event::Sample);
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
    });
}

fn bench_queues() {
    let pkt = |s: u64| Packet::data(FlowId(s as u32 % 8), s, 1500, SimTime::ZERO, false);
    bench("qdisc_droptail_1k", 20, 20, || {
        let mut q = DropTail::bytes(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
    bench("qdisc_fair_queue_1k", 20, 20, || {
        let mut q = FairQueue::new(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
    bench("qdisc_codel_1k", 20, 20, || {
        let mut q = Codel::bytes(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
    bench("qdisc_fq_codel_1k", 20, 20, || {
        let mut q = fq_codel(1 << 20);
        for s in 0..1000 {
            q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
        }
        while q.dequeue(SimTime::from_millis(2)).is_some() {}
    });
}

fn bench_utility() {
    let u = SafeSigmoid::default();
    let m = MiMetrics {
        mi_id: 0,
        target_rate_bps: 1e8,
        send_rate_bps: 1e8,
        throughput_bps: 9.7e7,
        loss_rate: 0.012,
        avg_rtt: SimDuration::from_millis(31),
        prev_avg_rtt: Some(SimDuration::from_millis(30)),
        min_rtt: SimDuration::from_millis(30),
        rtt_slope: 0.001,
        duration: SimDuration::from_millis(60),
        started_at: SimTime::ZERO,
        sent: 500,
        acked: 494,
        lost: 6,
    };
    bench("safe_sigmoid_utility", 20, 5, || {
        black_box(u.utility(black_box(&m)));
    });
}

/// Measure the reference full-simulation scenarios (shared with the
/// `perf_probe` example through `pcc_scenarios::perf`, so the two tools
/// always quote the same workload).
fn bench_full_sim(out: &mut BenchReport) {
    let runs = if fast_mode() { 2 } else { 5 };
    for (name, wall_ms, events, sim_secs) in perf::time_all_scenarios(runs) {
        let s = Scenario {
            name: name.to_string(),
            wall_ms,
            events,
            sim_secs,
        };
        println!(
            "{name:<32} best {wall_ms:>9.3}ms   {:>12.0} events/s   {:>8.1} sim-s/wall-s",
            s.events_per_sec(),
            s.sim_secs_per_wall_sec(),
        );
        out.scenarios.push(s);
    }
}

/// The off-path control-plane twins: the reference PCC and CUBIC
/// dumbbells rerun with the engine flipped to 1-RTT batched reports.
/// Read against `full_sim_5s_{pcc,cubic}_100mbps` from [`bench_full_sim`]
/// (same link, same seed, same horizon), the pair quotes the end-to-end
/// engine-cost delta of moving the algorithm off the per-ACK path.
fn bench_batched_sim(out: &mut BenchReport) {
    let runs = if fast_mode() { 2 } else { 5 };
    let twins: [(&str, Protocol); 2] = [
        (
            "full_sim_5s_pcc_batched",
            Protocol::pcc_default(SimDuration::from_millis(30)),
        ),
        ("full_sim_5s_cubic_batched", Protocol::Tcp("cubic")),
    ];
    for (name, proto) in twins {
        let (wall_ms, events) = perf::time_batched_scenario(&proto, runs);
        let s = Scenario {
            name: name.to_string(),
            wall_ms,
            events,
            sim_secs: perf::REFERENCE_SIM_SECS as f64,
        };
        println!(
            "{name:<32} best {wall_ms:>9.3}ms   {:>12.0} events/s   {:>8.1} sim-s/wall-s",
            s.events_per_sec(),
            s.sim_secs_per_wall_sec(),
        );
        out.scenarios.push(s);
    }
}

/// Pure engine-dispatch cost, no simulator: drive one algorithm object
/// with synthetic sent+ACK pairs at 100 µs spacing, once through the
/// per-ACK callback path (`on_sent` + `on_ack` + an effects drain per
/// packet, due timers delivered) and once through the batched path (the
/// aggregator absorbs each event and the algorithm sees one
/// `on_report` per 300 packets ≈ one 30 ms RTT). The wall-clock delta is
/// the control-plane work a datapath core sheds when feedback goes
/// off-path.
fn bench_cc_dispatch(out: &mut BenchReport) {
    pcc_scenarios::install_registry();
    const PKTS: u64 = if cfg!(debug_assertions) {
        20_000
    } else {
        200_000
    };
    const SPACING_US: u64 = 100;
    const PER_REPORT: u64 = 300;
    let rtt = SimDuration::from_millis(30);
    let sim_secs = (PKTS * SPACING_US) as f64 / 1e6;
    let runs = if fast_mode() { 2 } else { 5 };

    let drive = |algo: &str, batched: bool| -> f64 {
        let params = cc_registry::CcParams::default().with_rtt_hint(rtt);
        let mut cc = cc_registry::by_name(algo, &params).expect("registered algorithm");
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        let mut timers: Vec<(SimTime, u64)> = Vec::new();
        let mut agg = ReportAggregator::default();
        let mut now = SimTime::ZERO;
        {
            let mut ctx = Ctx::new(now, &mut rng, &mut fx);
            cc.on_start(&mut ctx);
        }
        timers.extend(fx.drain().timers);
        if batched {
            agg.begin(now);
        }
        let t0 = Instant::now();
        for i in 0..PKTS {
            now = SimTime::from_nanos(i * SPACING_US * 1_000);
            // Timers fire on both paths (batched mode withholds event
            // callbacks, not the clock).
            while let Some(ix) = timers.iter().position(|&(at, _)| at <= now) {
                let (_, token) = timers.swap_remove(ix);
                {
                    let mut ctx = Ctx::new(now, &mut rng, &mut fx);
                    cc.on_timer(token, &mut ctx);
                }
                timers.extend(fx.drain().timers);
            }
            let sent = SentEvent {
                now,
                seq: i,
                bytes: 1500,
                retx: false,
                in_flight: 30,
            };
            let ack = AckEvent {
                now,
                seq: i,
                rtt,
                sampled: true,
                srtt: rtt,
                min_rtt: rtt,
                max_rtt: rtt,
                recv_at: now,
                probe_train: cc.probe_tag(),
                of_retx: false,
                cum_ack: i + 1,
                newly_acked: 1,
                in_flight: 30,
                mss: 1500,
                in_recovery: false,
            };
            if batched {
                agg.on_sent(&sent);
                agg.on_ack(&ack);
                if (i + 1) % PER_REPORT == 0 {
                    let mut rep = agg.take(now);
                    rep.srtt = rtt;
                    rep.min_rtt = rtt;
                    rep.in_flight = 30;
                    rep.cum_ack = i + 1;
                    rep.mss = 1500;
                    {
                        let mut ctx = Ctx::new(now, &mut rng, &mut fx);
                        cc.on_report(&rep, &mut ctx);
                    }
                    timers.extend(fx.drain().timers);
                }
            } else {
                {
                    let mut ctx = Ctx::new(now, &mut rng, &mut fx);
                    cc.on_sent(&sent, &mut ctx);
                }
                timers.extend(fx.drain().timers);
                {
                    let mut ctx = Ctx::new(now, &mut rng, &mut fx);
                    cc.on_ack(&ack, &mut ctx);
                }
                timers.extend(fx.drain().timers);
            }
        }
        t0.elapsed().as_secs_f64() * 1000.0
    };

    for algo in ["cubic", "newreno", "pcc"] {
        for (suffix, batched) in [("per_ack", false), ("batched", true)] {
            let mut best_ms = f64::MAX;
            for _ in 0..runs {
                best_ms = best_ms.min(drive(algo, batched));
            }
            let s = Scenario {
                name: format!("cc_dispatch_{algo}_{suffix}"),
                wall_ms: best_ms,
                events: PKTS,
                sim_secs,
            };
            println!(
                "{:<32} best {best_ms:>9.3}ms   {:>12.0} events/s   {:>8.1} sim-s/wall-s",
                s.name,
                s.events_per_sec(),
                s.sim_secs_per_wall_sec(),
            );
            out.scenarios.push(s);
        }
    }
}

/// Time a subset of the experiment registry serially (`jobs = 1`) and in
/// parallel (`jobs = N`): the BENCH.json datapoint for the parallel
/// runner. Tables print as a side effect (they are the workload).
fn bench_experiments_suite(out: &mut BenchReport) {
    let ids: Vec<&str> = if full_mode() {
        registry().iter().map(|(id, _, _)| *id).collect()
    } else if fast_mode() {
        vec!["fig11", "fig15"]
    } else {
        vec!["fig07", "fig09", "fig11", "fig15", "sec442"]
    };
    let time_suite = |jobs: usize, dir: &str| -> f64 {
        let opts = Opts {
            jobs,
            out_dir: std::env::temp_dir().join(dir),
            ..Opts::default()
        };
        let t0 = Instant::now();
        for (id, _, run) in registry() {
            if ids.contains(&id) {
                let _ = run(&opts);
            }
        }
        t0.elapsed().as_secs_f64()
    };
    // Untimed warmup: the first experiment after a build pays first-touch
    // costs (code pages, registry init, out-dir creation) that would
    // otherwise all land on the serial pass and inflate the recorded
    // speedup.
    if let Some(&first) = ids.first() {
        for (id, _, run) in registry() {
            if id == first {
                let _ = run(&Opts {
                    jobs: 1,
                    out_dir: std::env::temp_dir().join("pcc_bench_suite_warmup"),
                    ..Opts::default()
                });
            }
        }
    }
    let serial_secs = time_suite(1, "pcc_bench_suite_serial");
    let jobs = runner::auto_jobs();
    let parallel_secs = time_suite(jobs, "pcc_bench_suite_parallel");
    let suite = SuiteTiming {
        ids: ids.iter().map(|s| s.to_string()).collect(),
        jobs,
        serial_secs,
        parallel_secs,
    };
    println!(
        "experiments_suite {:?}: serial {serial_secs:.1}s vs --jobs {jobs} {parallel_secs:.1}s \
         (speedup {:.2}x)",
        suite.ids,
        suite.speedup(),
    );
    out.suite = Some(suite);
}

fn main() {
    if !fast_mode() {
        bench_event_queue();
        bench_queues();
        bench_utility();
    } else {
        // Smoke the micro harness cheaply so CI still exercises it.
        bench("event_queue_smoke", 1, 1, || {
            let mut q = EventQueue::new();
            for i in 0..100u64 {
                q.schedule(SimTime::from_nanos(i * 7919 % 1000), Event::Sample);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        });
    }
    let mut out = BenchReport {
        mode: if full_mode() {
            "full"
        } else if fast_mode() {
            "fast"
        } else {
            "default"
        }
        .to_string(),
        cores: runner::auto_jobs(),
        ..Default::default()
    };
    bench_full_sim(&mut out);
    bench_batched_sim(&mut out);
    bench_cc_dispatch(&mut out);
    bench_experiments_suite(&mut out);
    let path = BenchReport::default_path();
    match out.write(&path) {
        Ok(()) => println!("\nBENCH.json written to {}", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
    }
}
