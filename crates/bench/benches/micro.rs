//! Criterion micro-benchmarks: simulator substrate hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcc_core::{MiMetrics, SafeSigmoid, UtilityFunction};
use pcc_scenarios::{run_single, LinkSetup, Protocol};
use pcc_simnet::event::{Event, EventQueue};
use pcc_simnet::ids::FlowId;
use pcc_simnet::packet::Packet;
use pcc_simnet::queue::{fq_codel, Codel, DropTail, FairQueue, Queue};
use pcc_simnet::time::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 10_000), Event::Sample);
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("qdisc_enq_deq_1k");
    let pkt = |s| Packet::data(FlowId(s as u32 % 8), s, 1500, SimTime::ZERO, false);
    group.bench_function("droptail", |b| {
        b.iter(|| {
            let mut q = DropTail::bytes(1 << 20);
            for s in 0..1000 {
                q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
            }
            while q.dequeue(SimTime::from_millis(2)).is_some() {}
        })
    });
    group.bench_function("fair_queue", |b| {
        b.iter(|| {
            let mut q = FairQueue::new(1 << 20);
            for s in 0..1000 {
                q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
            }
            while q.dequeue(SimTime::from_millis(2)).is_some() {}
        })
    });
    group.bench_function("codel", |b| {
        b.iter(|| {
            let mut q = Codel::bytes(1 << 20);
            for s in 0..1000 {
                q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
            }
            while q.dequeue(SimTime::from_millis(2)).is_some() {}
        })
    });
    group.bench_function("fq_codel", |b| {
        b.iter(|| {
            let mut q = fq_codel(1 << 20);
            for s in 0..1000 {
                q.enqueue(pkt(s), SimTime::from_nanos(s * 1000));
            }
            while q.dequeue(SimTime::from_millis(2)).is_some() {}
        })
    });
    group.finish();
}

fn bench_utility(c: &mut Criterion) {
    let u = SafeSigmoid::default();
    let m = MiMetrics {
        mi_id: 0,
        target_rate_bps: 1e8,
        send_rate_bps: 1e8,
        throughput_bps: 9.7e7,
        loss_rate: 0.012,
        avg_rtt: SimDuration::from_millis(31),
        prev_avg_rtt: Some(SimDuration::from_millis(30)),
        min_rtt: SimDuration::from_millis(30),
        rtt_slope: 0.001,
        duration: SimDuration::from_millis(60),
        started_at: SimTime::ZERO,
        sent: 500,
        acked: 494,
        lost: 6,
    };
    c.bench_function("safe_sigmoid_utility", |b| {
        b.iter(|| black_box(u.utility(black_box(&m))))
    });
}

fn bench_full_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_sim_5s");
    group.sample_size(10);
    group.bench_function("pcc_100mbps", |b| {
        b.iter(|| {
            run_single(
                Protocol::pcc_default(SimDuration::from_millis(30)),
                LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
                SimDuration::from_secs(5),
                1,
            )
        })
    });
    group.bench_function("cubic_100mbps", |b| {
        b.iter(|| {
            run_single(
                Protocol::Tcp("cubic"),
                LinkSetup::new(100e6, SimDuration::from_millis(30), 375_000),
                SimDuration::from_secs(5),
                1,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_queues,
    bench_utility,
    bench_full_sim
);
criterion_main!(benches);
