//! The experiment benches: `cargo bench -p pcc-bench --bench experiments`
//! regenerates every table and figure of the paper (scaled durations; see
//! EXPERIMENTS.md). This is intentionally a `harness = false` binary, not a
//! statistical benchmark: each experiment runs once and prints its rows.

use pcc_experiments::{registry, Opts};

fn main() {
    let mut opts = Opts::default();
    if std::env::args().any(|a| a == "--full") {
        opts.full = true;
    }
    println!("Regenerating every PCC (NSDI'15) table and figure (scaled durations).");
    println!(
        "Pass --full for paper-scale runs. CSV lands in {}\n",
        opts.out_dir.display()
    );
    for (id, desc, run) in registry() {
        println!("\n### {id}: {desc}\n");
        let t0 = std::time::Instant::now();
        let tables = run(&opts);
        println!(
            "[{id}: {} table(s) in {:.1}s]",
            tables.len(),
            t0.elapsed().as_secs_f64()
        );
    }
}
