//! # pcc-bench — benchmark harnesses
//!
//! * `benches/micro.rs` — micro-benchmarks of the simulator's hot paths
//!   (event queue, queue disciplines, utility evaluation) plus
//!   full-simulation throughput, and the machine-readable `BENCH.json`
//!   perf baseline (see [`report`]).
//! * `benches/experiments.rs` — regenerates every table and figure of the
//!   paper (delegates to `pcc-experiments`; `harness = false`).
//!
//! Run everything with `cargo bench --workspace`.
//!
//! The timing harness here is a deliberately small median-of-runs loop
//! (the environment has no network access, so Criterion is unavailable);
//! it reports median and min wall-clock per iteration.

pub mod report;

use std::time::{Duration, Instant};

/// Measure `f`, printing median/min per-iteration time.
///
/// Runs a short calibration to pick an iteration count that fills
/// ~`target_ms` per sample, then takes `samples` samples and reports the
/// median and the minimum.
pub fn bench(name: &str, samples: usize, target_ms: u64, mut f: impl FnMut()) {
    // Calibrate.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(Duration::from_nanos(100));
    let target = Duration::from_millis(target_ms.max(1));
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        per_iter.push(t.elapsed() / iters as u32);
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    println!(
        "{name:<32} median {median:>12.3?}   min {min:>12.3?}   ({iters} iters/sample, {} samples)",
        per_iter.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut count = 0u64;
        bench("noop", 3, 1, || {
            count += 1;
        });
        assert!(count > 0);
    }
}
