//! # pcc-bench — benchmark harnesses
//!
//! * `benches/micro.rs` — Criterion micro-benchmarks of the simulator's hot
//!   paths (event queue, queue disciplines, utility evaluation) plus
//!   full-simulation throughput.
//! * `benches/experiments.rs` — regenerates every table and figure of the
//!   paper (delegates to `pcc-experiments`; `harness = false`).
//!
//! Run everything with `cargo bench --workspace`.
