//! The machine-readable perf baseline: `BENCH.json`.
//!
//! Every bench run leaves a JSON datapoint so perf regressions are
//! diffable across PRs instead of anecdotal. The file carries, per
//! full-simulation scenario, the wall clock, the simulator event count,
//! **events/sec**, and **simulated seconds per wall second** — plus the
//! wall clock of the experiment suite at `--jobs 1` vs `--jobs N` and
//! the resulting speedup.
//!
//! The writer is hand-rolled (the workspace is dependency-free by
//! construction); the schema is flat enough that any JSON reader — or
//! `jq` — consumes it directly.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One full-simulation scenario measurement.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Bench name, e.g. `full_sim_5s_pcc_100mbps`.
    pub name: String,
    /// Best-of-runs wall clock, milliseconds.
    pub wall_ms: f64,
    /// Simulator events processed in one run.
    pub events: u64,
    /// Simulated duration of one run, seconds.
    pub sim_secs: f64,
}

impl Scenario {
    /// Simulator events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.wall_ms / 1000.0).max(1e-12)
    }

    /// Simulated seconds advanced per wall-clock second.
    pub fn sim_secs_per_wall_sec(&self) -> f64 {
        self.sim_secs / (self.wall_ms / 1000.0).max(1e-12)
    }
}

/// Wall clock of the experiment suite at `--jobs 1` vs `--jobs N`.
#[derive(Clone, Debug)]
pub struct SuiteTiming {
    /// Which experiment ids were timed (a fast subset by default).
    pub ids: Vec<String>,
    /// Worker count of the parallel run.
    pub jobs: usize,
    /// Serial (`--jobs 1`) wall clock, seconds.
    pub serial_secs: f64,
    /// Parallel (`--jobs N`) wall clock, seconds.
    pub parallel_secs: f64,
}

impl SuiteTiming {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }
}

/// The whole `BENCH.json` document.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Which mode produced it (`fast`, `default`, `full`).
    pub mode: String,
    /// Available cores on the measuring machine.
    pub cores: usize,
    /// Full-simulation scenario measurements.
    pub scenarios: Vec<Scenario>,
    /// Experiment-suite timing, when measured.
    pub suite: Option<SuiteTiming>,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchReport {
    /// Render the document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", esc(&self.mode)));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        out.push_str(&format!("  \"timestamp_unix\": {stamp},\n"));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"events\": {}, \
                 \"events_per_sec\": {:.0}, \"sim_secs\": {:.3}, \
                 \"sim_secs_per_wall_sec\": {:.2}}}{}\n",
                esc(&s.name),
                s.wall_ms,
                s.events,
                s.events_per_sec(),
                s.sim_secs,
                s.sim_secs_per_wall_sec(),
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        out.push_str("  ]");
        if let Some(suite) = &self.suite {
            let ids: Vec<String> = suite
                .ids
                .iter()
                .map(|i| format!("\"{}\"", esc(i)))
                .collect();
            out.push_str(&format!(
                ",\n  \"experiments_suite\": {{\n    \"ids\": [{}],\n    \"jobs\": {},\n    \
                 \"serial_secs\": {:.3},\n    \"parallel_secs\": {:.3},\n    \
                 \"speedup\": {:.3}\n  }}",
                ids.join(", "),
                suite.jobs,
                suite.serial_secs,
                suite.parallel_secs,
                suite.speedup(),
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the document to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }

    /// Where the report lands: `$PCC_BENCH_OUT`, or
    /// `target/bench/BENCH.json` under the *workspace* root (anchored at
    /// compile time — `cargo bench` sets the bench's cwd to the crate
    /// directory, which would otherwise sprout a stray `target/`).
    pub fn default_path() -> PathBuf {
        std::env::var_os("PCC_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench/BENCH.json")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            mode: "fast".into(),
            cores: 4,
            scenarios: vec![Scenario {
                name: "full_sim_5s_pcc_100mbps".into(),
                wall_ms: 50.0,
                events: 250_000,
                sim_secs: 5.0,
            }],
            suite: Some(SuiteTiming {
                ids: vec!["fig07".into(), "fig15".into()],
                jobs: 4,
                serial_secs: 10.0,
                parallel_secs: 4.0,
            }),
        }
    }

    #[test]
    fn derived_rates() {
        let r = sample();
        assert_eq!(r.scenarios[0].events_per_sec(), 5_000_000.0);
        assert_eq!(r.scenarios[0].sim_secs_per_wall_sec(), 100.0);
        assert_eq!(r.suite.as_ref().expect("set").speedup(), 2.5);
    }

    #[test]
    fn json_shape_and_write() {
        let r = sample();
        let json = r.to_json();
        for needle in [
            "\"mode\": \"fast\"",
            "\"events_per_sec\": 5000000",
            "\"sim_secs_per_wall_sec\": 100.00",
            "\"experiments_suite\"",
            "\"speedup\": 2.500",
            "\"ids\": [\"fig07\", \"fig15\"]",
        ] {
            assert!(json.contains(needle), "{needle} in:\n{json}");
        }
        // Balanced braces/brackets (a cheap well-formedness check given
        // the no-deps constraint).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let path = std::env::temp_dir().join("pcc_bench_report_test/BENCH.json");
        r.write(&path).expect("writes");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), json);
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = sample();
        r.mode = "we\"ird\\mode".into();
        let json = r.to_json();
        assert!(json.contains("we\\\"ird\\\\mode"));
    }
}
