//! TCP Illinois (Liu, Başar, Srikant 2008) — loss-*and*-delay-based AIMD,
//! designed for high-speed networks and evaluated by the paper as its most
//! sophisticated hardwired baseline (§2.1 calls out its collapse under
//! random loss and rapidly changing conditions).
//!
//! The additive-increase step α grows toward `α_max` when queueing delay is
//! small and shrinks toward `α_min` as delay rises; the multiplicative
//! decrease factor β does the opposite. The *event→response* wiring stays
//! hardwired: a loss still always shrinks the window.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::{SimDuration, SimTime};

use crate::common::{slow_start, INITIAL_CWND, MIN_SSTHRESH};

pub(crate) const ALPHA_MAX: f64 = 10.0;
const ALPHA_MIN: f64 = 0.3;
const BETA_MIN: f64 = 0.125;
pub(crate) const BETA_MAX: f64 = 0.5;
/// Below this window, behave like Reno (tcp_illinois.c `win_thresh`).
const WIN_THRESH: f64 = 15.0;

/// TCP Illinois congestion control.
#[derive(Clone, Debug)]
pub struct Illinois {
    cwnd: f64,
    ssthresh: f64,
    base_rtt: SimDuration,
    max_rtt: SimDuration,
    /// RTT samples accumulated over the current window-epoch.
    rtt_sum: f64,
    rtt_cnt: u32,
    /// Current adaptive parameters.
    alpha: f64,
    beta: f64,
    /// Acked packets since the last per-RTT parameter update.
    acked_since_update: f64,
    /// α ceiling (reached when queueing delay is minimal).
    alpha_max: f64,
    /// β ceiling (reached when queueing delay nears its maximum).
    beta_max: f64,
}

impl Illinois {
    /// New instance with IW10 and the Linux α/β envelope.
    pub fn new() -> Self {
        Self::with_params(ALPHA_MAX, BETA_MAX, INITIAL_CWND)
    }

    /// New instance with an explicit α/β envelope and initial window
    /// (`illinois:alpha_max=5,beta_max=0.3,iw=32`). Ceilings below the
    /// corresponding floors (`α_min` 0.3, `β_min` 0.125) are raised to
    /// them — `f64::clamp(lo, hi)` panics on an inverted range, and the
    /// registry schema's wider public floor cannot protect direct
    /// callers.
    pub fn with_params(alpha_max: f64, beta_max: f64, iw: f64) -> Self {
        let alpha_max = alpha_max.max(ALPHA_MIN);
        let beta_max = beta_max.max(BETA_MIN);
        Illinois {
            cwnd: iw,
            ssthresh: f64::MAX,
            base_rtt: SimDuration::MAX,
            max_rtt: SimDuration::ZERO,
            rtt_sum: 0.0,
            rtt_cnt: 0,
            alpha: 1.0,
            beta: beta_max,
            acked_since_update: 0.0,
            alpha_max,
            beta_max,
        }
    }

    /// Recompute α(d_a) and β(d_a) from the average queueing delay of the
    /// last RTT epoch (tcp_illinois.c `update_params`).
    fn update_params(&mut self) {
        if self.rtt_cnt == 0 {
            return;
        }
        let avg_rtt = self.rtt_sum / self.rtt_cnt as f64;
        self.rtt_sum = 0.0;
        self.rtt_cnt = 0;
        if self.cwnd < WIN_THRESH {
            self.alpha = 1.0;
            self.beta = self.beta_max;
            return;
        }
        let base = self.base_rtt.as_secs_f64();
        let dm = (self.max_rtt.as_secs_f64() - base).max(1e-9);
        let da = (avg_rtt - base).max(0.0);
        // α: maximum when delay under d1 = dm/100, hyperbolic decay after.
        let d1 = dm / 100.0;
        self.alpha = if da <= d1 {
            self.alpha_max
        } else {
            let spread = (self.alpha_max - ALPHA_MIN).max(1e-9);
            let k1 = (dm - d1) * ALPHA_MIN * self.alpha_max / spread;
            let k2 = (dm - d1) * ALPHA_MIN / spread - d1;
            (k1 / (k2 + da)).clamp(ALPHA_MIN, self.alpha_max)
        };
        // β: minimum under d2 = dm/10, maximum above d3 = 8dm/10, linear
        // in between.
        let d2 = dm / 10.0;
        let d3 = dm * 8.0 / 10.0;
        self.beta = if da <= d2 {
            BETA_MIN
        } else if da >= d3 {
            self.beta_max
        } else {
            (BETA_MIN * (d3 - da) + self.beta_max * (da - d2)) / (d3 - d2)
        };
    }
}

impl Default for Illinois {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for Illinois {
    fn name(&self) -> &'static str {
        "illinois"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        // Delay bookkeeping.
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt > self.max_rtt {
            self.max_rtt = ack.rtt;
        }
        self.rtt_sum += ack.rtt.as_secs_f64();
        self.rtt_cnt += 1;
        if self.cwnd < self.ssthresh {
            slow_start(&mut self.cwnd, ack.newly_acked);
            return;
        }
        // Once per window of ACKs, refresh α/β.
        self.acked_since_update += ack.newly_acked as f64;
        if self.acked_since_update >= self.cwnd {
            self.acked_since_update = 0.0;
            self.update_params();
        }
        self.cwnd += self.alpha * ack.newly_acked as f64 / self.cwnd;
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = ((1.0 - self.beta) * self.cwnd).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = ((1.0 - self.beta) * self.cwnd).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack_at, drive_acks};
    use pcc_simnet::time::SimDuration;

    fn feed_epoch(cc: &mut Illinois, rtt_ms: u64, n: u32) {
        for _ in 0..n {
            cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(rtt_ms)));
        }
    }

    #[test]
    fn degenerate_envelope_does_not_panic() {
        // Regression: `alpha_max` below the 0.3 floor made the α update's
        // `clamp(ALPHA_MIN, alpha_max)` an inverted range, which panics.
        // Direct construction bypasses the registry schema's floor.
        let mut cc = Illinois::with_params(0.1, 0.05, 10.0);
        cc.on_loss_event(SimTime::ZERO); // leave slow start
        for rtt_ms in [10, 10, 40, 40, 80, 80] {
            feed_epoch(&mut cc, rtt_ms, 40); // spans an epoch: update_params runs
        }
        assert!(cc.cwnd() >= 1.0, "still sane: {}", cc.cwnd());
    }

    #[test]
    fn low_delay_accelerates() {
        let mut cc = Illinois::new();
        drive_acks(&mut cc, 90, 1); // slow start to 100
        cc.on_loss_event(SimTime::ZERO); // enter CA
                                         // Establish delay range: base 20 ms, max 100 ms.
        feed_epoch(&mut cc, 100, 1);
        feed_epoch(&mut cc, 20, 1);
        // Run epochs at the base RTT: queueing delay 0 ⇒ α → α_max.
        for _ in 0..4 {
            let n = cc.cwnd() as u32 + 1;
            feed_epoch(&mut cc, 20, n);
        }
        assert!(
            (cc.alpha - ALPHA_MAX).abs() < 1e-9,
            "α at max under low delay: {}",
            cc.alpha
        );
        // β should be at its minimum.
        assert!((cc.beta - BETA_MIN).abs() < 1e-9, "β={}", cc.beta);
    }

    #[test]
    fn high_delay_brakes() {
        let mut cc = Illinois::new();
        drive_acks(&mut cc, 90, 1);
        cc.on_loss_event(SimTime::ZERO);
        feed_epoch(&mut cc, 20, 1); // base
        feed_epoch(&mut cc, 100, 1); // max
                                     // Run epochs near max RTT: α → α_min, β → β_max.
        for _ in 0..4 {
            let n = cc.cwnd() as u32 + 1;
            feed_epoch(&mut cc, 95, n);
        }
        assert!(cc.alpha < 1.0, "α small under high delay: {}", cc.alpha);
        assert!(cc.beta > 0.4, "β large under high delay: {}", cc.beta);
    }

    #[test]
    fn loss_uses_adaptive_beta() {
        let mut cc = Illinois::new();
        drive_acks(&mut cc, 90, 1);
        cc.on_loss_event(SimTime::ZERO);
        feed_epoch(&mut cc, 20, 1);
        feed_epoch(&mut cc, 100, 1);
        for _ in 0..4 {
            let n = cc.cwnd() as u32 + 1;
            feed_epoch(&mut cc, 20, n);
        }
        let before = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        // β = β_min = 0.125 ⇒ cwnd shrinks by only 12.5%.
        assert!((cc.cwnd() - before * (1.0 - BETA_MIN)).abs() < 1e-6);
    }

    #[test]
    fn small_window_behaves_like_reno() {
        let mut cc = Illinois::new();
        // cwnd 10 < WIN_THRESH: α pinned to 1.
        cc.on_loss_event(SimTime::ZERO); // cwnd 5, CA mode
        feed_epoch(&mut cc, 30, 20);
        assert_eq!(cc.alpha, 1.0);
    }
}
