//! TCP BIC (Xu, Harfoush, Rhee 2004) — CUBIC's predecessor, included in
//! the Fig. 16 stability comparison.
//!
//! Binary increase: below the last-known maximum the window binary-searches
//! toward it (fast far away, slow close up); above it, max probing
//! accelerates away. Constants follow Linux `tcp_bic.c`.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::SimTime;

use crate::common::{slow_start, INITIAL_CWND, MIN_SSTHRESH};

/// Don't binary-search below this window; behave like Reno.
const LOW_WINDOW: f64 = 14.0;
/// Max window growth per RTT (packets).
const MAX_INCREMENT: f64 = 16.0;
/// Binary-search divisor (Linux `BICTCP_B`).
const B: f64 = 4.0;
/// Smoothing for the plateau near the old maximum.
const SMOOTH_PART: f64 = 20.0;
/// Multiplicative decrease factor (Linux: 819/1024).
pub(crate) const BETA: f64 = 819.0 / 1024.0;

/// TCP BIC congestion control.
#[derive(Clone, Debug)]
pub struct Bic {
    cwnd: f64,
    ssthresh: f64,
    /// Window right before the last reduction.
    last_max: f64,
    /// Multiplicative decrease factor.
    beta: f64,
}

impl Bic {
    /// New instance with IW10 and the Linux decrease factor.
    pub fn new() -> Self {
        Self::with_params(BETA, INITIAL_CWND)
    }

    /// New instance with an explicit decrease factor and initial window
    /// (`bic:beta=0.7,iw=32`).
    pub fn with_params(beta: f64, iw: f64) -> Self {
        Bic {
            cwnd: iw,
            ssthresh: f64::MAX,
            last_max: 0.0,
            beta,
        }
    }

    /// Packets that must be ACKed for cwnd to grow by 1 (Linux `cnt`).
    fn cnt(&self) -> f64 {
        if self.cwnd < LOW_WINDOW {
            // Reno region.
            return self.cwnd;
        }
        if self.cwnd < self.last_max {
            // Binary search toward last_max.
            let dist = (self.last_max - self.cwnd) / B;
            if dist > MAX_INCREMENT {
                self.cwnd / MAX_INCREMENT
            } else if dist <= 1.0 {
                self.cwnd * SMOOTH_PART / B
            } else {
                self.cwnd / dist
            }
        } else {
            // Max probing.
            if self.cwnd < self.last_max + B {
                self.cwnd * SMOOTH_PART / B
            } else if self.cwnd < self.last_max + MAX_INCREMENT * (B - 1.0) {
                self.cwnd * (B - 1.0) / (self.cwnd - self.last_max)
            } else {
                self.cwnd / MAX_INCREMENT
            }
        }
    }
}

impl Default for Bic {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for Bic {
    fn name(&self) -> &'static str {
        "bic"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        if self.cwnd < self.ssthresh {
            slow_start(&mut self.cwnd, ack.newly_acked);
            return;
        }
        for _ in 0..ack.newly_acked {
            self.cwnd += 1.0 / self.cnt();
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        // Fast convergence.
        if self.cwnd < self.last_max {
            self.last_max = self.cwnd * (2.0 - (1.0 - self.beta)) / 2.0;
        } else {
            self.last_max = self.cwnd;
        }
        self.ssthresh = if self.cwnd < LOW_WINDOW {
            (self.cwnd / 2.0).max(MIN_SSTHRESH)
        } else {
            (self.cwnd * self.beta).max(MIN_SSTHRESH)
        };
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.last_max = self.cwnd;
        self.ssthresh = (self.cwnd * self.beta).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::drive_acks;

    #[test]
    fn gentle_decrease_above_low_window() {
        let mut cc = Bic::new();
        drive_acks(&mut cc, 90, 1); // 100
        let before = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        assert!((cc.cwnd() - before * BETA).abs() < 1e-9, "~20% cut only");
    }

    #[test]
    fn reno_halving_below_low_window() {
        let mut cc = Bic::new();
        cc.on_loss_event(SimTime::ZERO); // from 10 (< LOW_WINDOW): halve
        assert_eq!(cc.cwnd(), 5.0);
    }

    #[test]
    fn binary_search_fast_when_far_slow_when_near() {
        let mut cc = Bic::new();
        drive_acks(&mut cc, 190, 1); // cwnd 200
        cc.on_loss_event(SimTime::ZERO); // last_max=200, cwnd=159.9
        let far_cnt = cc.cnt();
        // Grow until near last_max.
        while cc.cwnd() < cc.last_max - 2.0 {
            drive_acks(&mut cc, 1, 1);
        }
        let near_cnt = cc.cnt();
        assert!(
            near_cnt > far_cnt,
            "growth slows near the old max: cnt {near_cnt} vs {far_cnt}"
        );
    }

    #[test]
    fn max_probing_accelerates_past_old_peak() {
        let mut cc = Bic::new();
        drive_acks(&mut cc, 90, 1); // 100
        cc.on_loss_event(SimTime::ZERO); // last_max 100
                                         // Push well past the old max.
        while cc.cwnd() < cc.last_max + 2.0 {
            drive_acks(&mut cc, 1, 1);
        }
        let just_past = cc.cnt();
        while cc.cwnd() < cc.last_max + MAX_INCREMENT * (B - 1.0) + 5.0 {
            drive_acks(&mut cc, 1, 1);
        }
        let far_past = cc.cnt();
        assert!(
            far_past < just_past,
            "probing accelerates with distance: {far_past} vs {just_past}"
        );
    }
}
