//! TCP Westwood+ (Mascolo et al. 2001) — bandwidth-estimation backoff,
//! designed for wireless/lossy links (Fig. 16's comparison set).
//!
//! Instead of blind halving, Westwood sets `ssthresh = BWE·RTT_min/MSS`
//! on loss, where BWE is a low-pass-filtered estimate of the delivery rate
//! — so random loss that doesn't reduce delivered bandwidth doesn't shrink
//! the operating point as much. Growth is Reno's.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::{SimDuration, SimTime};

use crate::common::{reno_ca, slow_start, INITIAL_CWND, MIN_SSTHRESH};

/// Westwood's default bandwidth-filter new-sample weight (Linux
/// tcp_westwood.c: 1/8).
pub(crate) const DEFAULT_GAIN: f64 = 0.125;

/// TCP Westwood+ congestion control.
#[derive(Clone, Debug)]
pub struct Westwood {
    cwnd: f64,
    ssthresh: f64,
    /// Filtered bandwidth estimate, packets/sec.
    bwe: f64,
    /// Bytes acked since the last bandwidth sample.
    acked_since_sample: f64,
    /// Time of the last bandwidth sample.
    last_sample_at: Option<SimTime>,
    min_rtt: SimDuration,
    /// New-sample weight of the bandwidth low-pass filter.
    gain: f64,
}

impl Westwood {
    /// New instance with IW10 and the Linux 1/8 filter gain.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_GAIN, INITIAL_CWND)
    }

    /// New instance with an explicit filter gain and initial window
    /// (`westwood:gain=0.5,iw=32`).
    pub fn with_params(gain: f64, iw: f64) -> Self {
        Westwood {
            cwnd: iw,
            ssthresh: f64::MAX,
            bwe: 0.0,
            acked_since_sample: 0.0,
            last_sample_at: None,
            min_rtt: SimDuration::MAX,
            gain,
        }
    }

    /// Current bandwidth estimate in packets/sec.
    pub fn bwe_pkts_per_sec(&self) -> f64 {
        self.bwe
    }

    /// Westwood+ samples bandwidth once per RTT and low-pass filters it.
    fn sample(&mut self, now: SimTime, srtt: SimDuration) {
        let Some(last) = self.last_sample_at else {
            self.last_sample_at = Some(now);
            return;
        };
        let elapsed = now.saturating_since(last);
        if elapsed < srtt.max(SimDuration::from_millis(50)) {
            return;
        }
        let sample = self.acked_since_sample / elapsed.as_secs_f64().max(1e-9);
        // 7/8 old + 1/8 new by default (Linux tcp_westwood.c filter).
        self.bwe = if self.bwe == 0.0 {
            sample
        } else {
            (1.0 - self.gain) * self.bwe + self.gain * sample
        };
        self.acked_since_sample = 0.0;
        self.last_sample_at = Some(now);
    }

    fn bdp_window(&self) -> f64 {
        (self.bwe * self.min_rtt.as_secs_f64()).max(MIN_SSTHRESH)
    }
}

impl Default for Westwood {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for Westwood {
    fn name(&self) -> &'static str {
        "westwood"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        if ack.rtt < self.min_rtt {
            self.min_rtt = ack.rtt;
        }
        self.acked_since_sample += ack.newly_acked as f64;
        self.sample(ack.now, ack.srtt);
        if self.cwnd < self.ssthresh {
            slow_start(&mut self.cwnd, ack.newly_acked);
        } else {
            reno_ca(&mut self.cwnd, ack.newly_acked);
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        // Backoff to the estimated BDP, not half the window.
        self.ssthresh = if self.bwe > 0.0 && self.min_rtt < SimDuration::MAX {
            self.bdp_window()
        } else {
            (self.cwnd / 2.0).max(MIN_SSTHRESH)
        };
        if self.cwnd > self.ssthresh {
            self.cwnd = self.ssthresh;
        }
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = if self.bwe > 0.0 && self.min_rtt < SimDuration::MAX {
            self.bdp_window()
        } else {
            (self.cwnd / 2.0).max(MIN_SSTHRESH)
        };
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ack_at;

    /// Feed a steady 100 pkt/s delivery for a while to converge the filter.
    fn feed_steady(cc: &mut Westwood, secs: u64, pkts_per_sec: u64) -> SimTime {
        let mut now = SimTime::ZERO;
        let gap = SimDuration::from_nanos(1_000_000_000 / pkts_per_sec);
        for _ in 0..(secs * pkts_per_sec) {
            cc.on_ack(&ack_at(1, now, SimDuration::from_millis(50)));
            now += gap;
        }
        now
    }

    #[test]
    fn bandwidth_estimate_converges() {
        let mut cc = Westwood::new();
        feed_steady(&mut cc, 10, 100);
        let bwe = cc.bwe_pkts_per_sec();
        assert!(
            (bwe - 100.0).abs() < 15.0,
            "BWE ≈ delivery rate: {bwe} pkts/s"
        );
    }

    #[test]
    fn loss_backs_off_to_bdp_not_half() {
        let mut cc = Westwood::new();
        feed_steady(&mut cc, 10, 100);
        // BDP = 100 pkt/s × 50 ms = 5 packets.
        let w_before = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        assert!(
            (cc.ssthresh() - 5.0).abs() < 1.0,
            "ssthresh ≈ BDP: {}",
            cc.ssthresh()
        );
        assert!(cc.cwnd() <= w_before);
    }

    #[test]
    fn loss_without_estimate_halves() {
        let mut cc = Westwood::new();
        cc.on_loss_event(SimTime::ZERO);
        assert_eq!(cc.ssthresh(), 5.0, "fallback to halving from IW10");
    }

    #[test]
    fn cwnd_below_bdp_not_raised_by_loss() {
        let mut cc = Westwood::new();
        feed_steady(&mut cc, 10, 1000); // BDP = 1000*0.05 = 50
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 1.0, "RTO still collapses cwnd");
        assert!(cc.ssthresh() > 30.0, "but ssthresh holds the BDP estimate");
    }
}
