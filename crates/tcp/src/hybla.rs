//! TCP Hybla (Caini & Firrincieli 2004) — the satellite-link baseline.
//!
//! Hybla normalizes window growth to a reference RTT (25 ms): a flow with
//! RTT ρ times the reference grows `2^ρ − 1` per ACK in slow start and
//! `ρ²/cwnd` per ACK in congestion avoidance, so long-RTT (GEO satellite)
//! flows ramp as fast as terrestrial ones. The loss response stays Reno's
//! halving — which is exactly why it still collapses under the random loss
//! of a real satellite link (Fig. 6: 17× below PCC).

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::{SimDuration, SimTime};

use crate::common::{INITIAL_CWND, MIN_SSTHRESH};

/// Hybla's reference RTT (25 ms, per the paper and Linux tcp_hybla.c).
pub(crate) const RTT0: SimDuration = SimDuration::from_millis(25);

/// TCP Hybla congestion control.
#[derive(Clone, Debug)]
pub struct Hybla {
    cwnd: f64,
    ssthresh: f64,
    /// ρ = max(RTT/RTT₀, 1).
    rho: f64,
    /// The reference RTT growth is normalized to.
    rtt0: SimDuration,
}

impl Hybla {
    /// New instance with IW10 and the 25 ms reference RTT.
    pub fn new() -> Self {
        Self::with_params(RTT0, INITIAL_CWND)
    }

    /// New instance with an explicit reference RTT and initial window
    /// (`hybla:rtt0_ms=50,iw=32`). A zero reference RTT would divide by
    /// zero in ρ; it is raised to 1 ms (the registry schema floors
    /// `rtt0_ms` at 1 too, but direct construction must not produce an
    /// instance whose first ACK makes the window infinite).
    pub fn with_params(rtt0: SimDuration, iw: f64) -> Self {
        Hybla {
            cwnd: iw,
            ssthresh: f64::MAX,
            rho: 1.0,
            rtt0: rtt0.max(SimDuration::from_millis(1)),
        }
    }

    fn update_rho(&mut self, srtt: SimDuration) {
        self.rho = (srtt.as_secs_f64() / self.rtt0.as_secs_f64()).max(1.0);
    }

    /// Current RTT-normalization factor ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

impl Default for Hybla {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for Hybla {
    fn name(&self) -> &'static str {
        "hybla"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        self.update_rho(ack.srtt);
        if self.cwnd < self.ssthresh {
            // cwnd += 2^ρ − 1 per ACK; like Linux tcp_hybla.c, the slow-
            // start exponent is clamped (ρ ≤ 16) or the window goes
            // astronomical within a single ACK on GEO-satellite RTTs.
            self.cwnd += (2f64.powf(self.rho.min(16.0)) - 1.0) * ack.newly_acked as f64;
        } else {
            // cwnd += ρ²/cwnd per ACK.
            self.cwnd += self.rho * self.rho * ack.newly_acked as f64 / self.cwnd;
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ack_at;

    #[test]
    fn short_rtt_behaves_like_reno() {
        let mut cc = Hybla::new();
        // 25 ms RTT ⇒ ρ = 1 ⇒ slow start +1/ack, CA +1/cwnd.
        cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(25)));
        assert!((cc.rho() - 1.0).abs() < 1e-9);
        assert_eq!(cc.cwnd(), 11.0);
    }

    #[test]
    fn rho_floors_at_one() {
        let mut cc = Hybla::new();
        cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(5)));
        assert_eq!(cc.rho(), 1.0, "sub-reference RTT does not slow growth");
    }

    #[test]
    fn long_rtt_ramps_aggressively() {
        // 800 ms satellite RTT ⇒ ρ = 32 ⇒ slow-start adds 2^32−1... in
        // practice cwnd explodes per ACK, compensating the slow ACK clock.
        let mut cc = Hybla::new();
        let before = cc.cwnd();
        cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(250)));
        // ρ = 10 ⇒ +1023 per ack.
        assert!((cc.rho() - 10.0).abs() < 1e-9);
        assert!((cc.cwnd() - (before + 1023.0)).abs() < 1e-6);
    }

    #[test]
    fn ca_growth_scales_with_rho_squared() {
        let mut cc = Hybla::new();
        cc.on_loss_event(SimTime::ZERO); // force CA (cwnd 5, ssthresh 5)
        let w = cc.cwnd();
        cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(50)));
        // ρ = 2 ⇒ +4/cwnd.
        assert!((cc.cwnd() - (w + 4.0 / w)).abs() < 1e-9);
    }

    #[test]
    fn loss_still_halves() {
        let mut cc = Hybla::new();
        for _ in 0..5 {
            cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(800)));
        }
        let before = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        assert!((cc.cwnd() - before / 2.0).abs() < 1e-6, "hardwired halving");
    }

    #[test]
    fn zero_reference_rtt_is_raised_not_divided_by() {
        // Regression: rtt0 = 0 made update_rho divide by zero (ρ = inf)
        // and the first CA ACK drove cwnd to infinity. Direct
        // construction now floors the reference RTT at 1 ms, mirroring
        // Illinois::with_params' degenerate-parameter guard.
        let mut cc = Hybla::with_params(SimDuration::ZERO, 10.0);
        cc.on_loss_event(SimTime::ZERO); // force CA
        cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(50)));
        assert!(cc.rho().is_finite(), "rho stays finite: {}", cc.rho());
        assert!(cc.cwnd().is_finite(), "cwnd stays finite: {}", cc.cwnd());
    }
}
