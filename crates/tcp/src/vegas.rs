//! TCP Vegas (Brakmo & Peterson 1995) — the classic delay-based algorithm,
//! included in the Fig. 16 stability/reactiveness comparison.
//!
//! Vegas estimates the backlog it keeps in the bottleneck queue as
//! `diff = cwnd · (RTT − baseRTT)/RTT` and nudges the window to hold
//! `diff` between α = 2 and β = 4 packets. Gentle and stable — but it
//! needs an accurate baseRTT and gets starved by loss-based competitors.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::{SimDuration, SimTime};

use crate::common::{INITIAL_CWND, MIN_SSTHRESH};

/// Lower backlog target α, packets (Brakmo & Peterson: 2).
pub const DEFAULT_ALPHA_PKTS: f64 = 2.0;
/// Upper backlog target β, packets (Brakmo & Peterson: 4).
pub const DEFAULT_BETA_PKTS: f64 = 4.0;
const GAMMA_PKTS: f64 = 1.0;

/// TCP Vegas congestion control.
#[derive(Clone, Debug)]
pub struct Vegas {
    cwnd: f64,
    ssthresh: f64,
    base_rtt: SimDuration,
    /// Minimum RTT seen during the current epoch.
    epoch_min_rtt: SimDuration,
    /// ACKs remaining until the epoch (≈ one RTT) completes.
    epoch_acks_left: f64,
    /// Slow-start epochs alternate growth/hold (Vegas doubles every
    /// *other* RTT).
    ss_grow_this_epoch: bool,
    /// Lower backlog target α, packets (grow below it).
    alpha_pkts: f64,
    /// Upper backlog target β, packets (shrink above it).
    beta_pkts: f64,
}

impl Vegas {
    /// New instance with IW10 and the classic α = 2 / β = 4 band.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_ALPHA_PKTS, DEFAULT_BETA_PKTS, INITIAL_CWND)
    }

    /// New instance with an explicit backlog band `[alpha, beta]` (in
    /// packets) and initial window `iw` — the `vegas:alpha=…,beta=…,iw=…`
    /// spec surface. A band handed in backwards is reordered rather than
    /// oscillating forever.
    pub fn with_params(alpha: f64, beta: f64, iw: f64) -> Self {
        let (alpha, beta) = if alpha <= beta {
            (alpha, beta)
        } else {
            (beta, alpha)
        };
        Vegas {
            cwnd: iw.max(1.0),
            ssthresh: f64::MAX,
            base_rtt: SimDuration::MAX,
            epoch_min_rtt: SimDuration::MAX,
            epoch_acks_left: iw.max(1.0),
            ss_grow_this_epoch: true,
            alpha_pkts: alpha,
            beta_pkts: beta,
        }
    }

    /// Estimated queue backlog in packets.
    fn diff(&self) -> f64 {
        let rtt = self.epoch_min_rtt.as_secs_f64();
        let base = self.base_rtt.as_secs_f64();
        if rtt <= 0.0 || !rtt.is_finite() || base > rtt {
            return 0.0;
        }
        self.cwnd * (rtt - base) / rtt
    }

    fn end_epoch(&mut self) {
        let diff = self.diff();
        if self.cwnd < self.ssthresh {
            // Slow start: grow every other epoch; leave once the backlog
            // exceeds γ.
            if diff > GAMMA_PKTS {
                self.ssthresh = self.cwnd.min(self.ssthresh);
                self.cwnd = (self.cwnd - diff).max(MIN_SSTHRESH);
            } else if self.ss_grow_this_epoch {
                self.cwnd *= 2.0;
            }
            self.ss_grow_this_epoch = !self.ss_grow_this_epoch;
        } else if diff < self.alpha_pkts {
            self.cwnd += 1.0;
        } else if diff > self.beta_pkts {
            self.cwnd = (self.cwnd - 1.0).max(MIN_SSTHRESH);
        }
        self.epoch_min_rtt = SimDuration::MAX;
        self.epoch_acks_left = self.cwnd;
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt < self.epoch_min_rtt {
            self.epoch_min_rtt = ack.rtt;
        }
        self.epoch_acks_left -= ack.newly_acked as f64;
        if self.epoch_acks_left <= 0.0 {
            self.end_epoch();
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
        self.epoch_acks_left = self.cwnd;
        self.epoch_min_rtt = SimDuration::MAX;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
        self.epoch_acks_left = 1.0;
        self.epoch_min_rtt = SimDuration::MAX;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ack_at;

    /// Feed exactly one epoch's worth of ACKs so `end_epoch` fires once.
    fn epoch(cc: &mut Vegas, rtt_ms: u64) {
        let n = cc.epoch_acks_left.ceil().max(1.0) as u32;
        for _ in 0..n {
            cc.on_ack(&ack_at(1, SimTime::ZERO, SimDuration::from_millis(rtt_ms)));
        }
    }

    #[test]
    fn increments_when_queue_empty() {
        let mut cc = Vegas::new();
        cc.on_loss_event(SimTime::ZERO); // into CA at cwnd 5
        let w = cc.cwnd();
        // RTT equals baseRTT ⇒ diff = 0 < α ⇒ +1 per epoch.
        epoch(&mut cc, 30);
        epoch(&mut cc, 30);
        assert_eq!(cc.cwnd(), w + 2.0);
    }

    #[test]
    fn decrements_when_backlogged() {
        let mut cc = Vegas::new();
        cc.on_loss_event(SimTime::ZERO);
        epoch(&mut cc, 20); // establish baseRTT = 20 ms
                            // Grow the window a bit first.
        epoch(&mut cc, 20);
        let w = cc.cwnd();
        // RTT quadruples: diff = cwnd·(60/80) > β ⇒ −1.
        epoch(&mut cc, 80);
        assert_eq!(cc.cwnd(), w - 1.0);
    }

    #[test]
    fn holds_inside_band() {
        let mut cc = Vegas::new();
        cc.on_loss_event(SimTime::ZERO); // cwnd 5
        epoch(&mut cc, 30); // baseRTT 30; diff 0 -> +1 (cwnd 6)
        let w = cc.cwnd();
        // Choose RTT so diff lands inside [α, β]: w = 6, r = 50 gives
        // diff = 6·(20/50) = 2.4 ⇒ not < α, not > β: hold.
        epoch(&mut cc, 50);
        assert_eq!(cc.cwnd(), w, "no adjustment inside [α, β]");
    }

    #[test]
    fn slow_start_exits_on_backlog() {
        let mut cc = Vegas::new();
        // Establish base 30 ms, then queueing RTTs in slow start.
        epoch(&mut cc, 30);
        for _ in 0..10 {
            epoch(&mut cc, 60);
            if cc.cwnd() >= cc.ssthresh() {
                break;
            }
        }
        assert!(cc.ssthresh() < f64::MAX, "left slow start via delay signal");
    }
}
