//! TCP CUBIC (Ha, Rhee, Xu 2008; RFC 8312) — the Linux default since
//! 2.6.19 and the paper's primary Internet baseline.
//!
//! Window growth is a cubic function of wall-clock time since the last
//! loss, `W(t) = C(t−K)³ + W_max`, making growth RTT-independent (the
//! motivation for Fig. 8's RTT-fairness comparison), with a TCP-friendly
//! region that keeps it no slower than Reno on short paths.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::SimTime;

use crate::common::{slow_start, INITIAL_CWND, MIN_SSTHRESH};

/// CUBIC's scaling constant (RFC 8312: 0.4).
pub const DEFAULT_C: f64 = 0.4;
/// Multiplicative decrease factor (RFC 8312: β = 0.7).
pub const DEFAULT_BETA: f64 = 0.7;

/// CUBIC congestion control.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time offset of the cubic's inflection point.
    k: f64,
    /// Fast-convergence memory of the previous `w_max`.
    w_last_max: f64,
    /// Multiplicative-decrease factor β (tunable; RFC 8312: 0.7).
    beta: f64,
    /// Cubic scaling constant C (tunable; RFC 8312: 0.4).
    c: f64,
}

impl Cubic {
    /// New instance with IW10 and the RFC 8312 constants.
    pub fn new() -> Self {
        Self::with_params(DEFAULT_BETA, DEFAULT_C, INITIAL_CWND)
    }

    /// New instance with explicit constants: multiplicative-decrease
    /// factor `beta`, scaling constant `c`, and initial window `iw`
    /// packets (the `cubic:beta=…,c=…,iw=…` spec surface).
    pub fn with_params(beta: f64, c: f64, iw: f64) -> Self {
        Cubic {
            cwnd: iw.max(1.0),
            ssthresh: f64::MAX,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_last_max: 0.0,
            beta,
            c: c.max(1e-6),
        }
    }

    fn enter_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        self.k = if self.cwnd < self.w_max {
            ((self.w_max - self.cwnd) / self.c).cbrt()
        } else {
            0.0
        };
    }

    fn w_cubic(&self, t: f64) -> f64 {
        self.c * (t - self.k).powi(3) + self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        if self.cwnd < self.ssthresh {
            slow_start(&mut self.cwnd, ack.newly_acked);
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(ack.now);
        }
        let t = ack
            .now
            .saturating_since(self.epoch_start.expect("set above"))
            .as_secs_f64();
        let rtt = ack.srtt.as_secs_f64();
        // Target one RTT ahead on the cubic curve.
        let target = self.w_cubic(t + rtt);
        // TCP-friendly region (RFC 8312 §4.2): CUBIC must not be slower
        // than standard AIMD with its β: W_est = W_max·β + [3(1−β)/(1+β)]·(t/RTT).
        let w_est = self.w_max * self.beta
            + (3.0 * (1.0 - self.beta) / (1.0 + self.beta)) * (t / rtt.max(1e-6));
        for _ in 0..ack.newly_acked {
            let goal = target.max(w_est);
            if goal > self.cwnd {
                self.cwnd += (goal - self.cwnd) / self.cwnd;
            } else {
                // Max-probing plateau: creep forward slowly.
                self.cwnd += 0.01 / self.cwnd;
            }
        }
    }

    fn on_loss_event(&mut self, now: SimTime) {
        // Fast convergence (RFC 8312 §4.6): if the loss came below the
        // previous W_max, release bandwidth by remembering a smaller peak.
        if self.cwnd < self.w_last_max {
            self.w_max = self.cwnd * (2.0 - self.beta) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.w_last_max = self.cwnd;
        self.ssthresh = (self.cwnd * self.beta).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
        let _ = now;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_max = self.cwnd;
        self.w_last_max = self.cwnd;
        self.ssthresh = (self.cwnd * self.beta).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack_at, drive_acks, drive_acks_timed};
    use pcc_simnet::time::SimDuration;

    #[test]
    fn loss_reduces_by_beta() {
        let mut cc = Cubic::new();
        drive_acks(&mut cc, 90, 1); // slow start to 100
        let before = cc.cwnd();
        cc.on_loss_event(SimTime::from_secs(1));
        assert!((cc.cwnd() - before * DEFAULT_BETA).abs() < 1e-9);
    }

    #[test]
    fn concave_recovery_toward_w_max() {
        let mut cc = Cubic::new();
        drive_acks(&mut cc, 90, 1);
        let w_before_loss = cc.cwnd();
        cc.on_loss_event(SimTime::from_secs(1));
        // Drive ACKs over several seconds: cwnd must approach W_max and
        // plateau near it (concave region).
        let rtt = SimDuration::from_millis(30);
        let mut now = SimTime::from_secs(1);
        let mut last = cc.cwnd();
        let mut grew = 0;
        for _ in 0..200 {
            now = drive_acks_timed(&mut cc, 10, 1, now, SimDuration::from_millis(3), rtt);
            if cc.cwnd() > last {
                grew += 1;
            }
            last = cc.cwnd();
        }
        assert!(grew > 100, "cwnd keeps growing");
        assert!(
            cc.cwnd() > w_before_loss * 0.9,
            "recovers toward W_max: {} vs {}",
            cc.cwnd(),
            w_before_loss
        );
    }

    #[test]
    fn inflection_point_k_matches_rfc() {
        // After a loss at W = 1000: W_max = 1000, cwnd = 700, and
        // K = cbrt(W_max·(1−β)/C) = cbrt(300/0.4) ≈ 9.086 s (RFC 8312 §4.1).
        let mut cc = Cubic::new();
        drive_acks(&mut cc, 990, 1); // slow start to 1000
        cc.on_loss_event(SimTime::from_secs(5));
        cc.enter_epoch(SimTime::from_secs(5));
        assert!((cc.w_max - 1000.0).abs() < 1e-9);
        assert!((cc.cwnd() - 700.0).abs() < 1e-9);
        let expected_k = (1000.0 * (1.0 - DEFAULT_BETA) / DEFAULT_C).cbrt();
        assert!((cc.k - expected_k).abs() < 1e-9, "K = {}", cc.k);
        // The curve anchors: W(0) = cwnd at reduction, W(K) = W_max, and
        // it grows monotonically through the concave and convex regions.
        assert!((cc.w_cubic(0.0) - 700.0).abs() < 1e-6);
        assert!((cc.w_cubic(cc.k) - 1000.0).abs() < 1e-9);
        assert!(cc.w_cubic(2.0) > cc.w_cubic(1.0));
        assert!(cc.w_cubic(cc.k + 2.0) > cc.w_cubic(cc.k + 1.0));
        // Wall-clock (not RTT) drives the curve — the design property the
        // paper's Fig. 8 RTT-fairness experiment leans on.
        assert!(cc.w_cubic(12.0) > 1000.0, "convex growth past K");
    }

    #[test]
    fn fast_convergence_shrinks_peak() {
        let mut cc = Cubic::new();
        drive_acks(&mut cc, 90, 1);
        cc.on_loss_event(SimTime::ZERO);
        let w1 = cc.w_max;
        // Second loss below the previous peak triggers fast convergence.
        cc.on_loss_event(SimTime::from_millis(100));
        assert!(cc.w_max < w1, "fast convergence lowers the target peak");
    }

    #[test]
    fn tcp_friendly_region_floors_growth() {
        let mut cc = Cubic::new();
        drive_acks(&mut cc, 20, 1); // cwnd 30
        cc.on_loss_event(SimTime::ZERO);
        let after_loss = cc.cwnd();
        // With a long RTT and small window, W_est (Reno-like) dominates.
        let rtt = SimDuration::from_millis(200);
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            cc.on_ack(&ack_at(1, now, rtt));
            now += SimDuration::from_millis(40);
        }
        assert!(cc.cwnd() > after_loss, "friendly region keeps growing");
    }
}
