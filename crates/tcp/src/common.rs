//! Shared constants and helpers for the TCP congestion-control baselines.

/// Initial congestion window in packets (IW10, RFC 6928 — the Linux default
/// in the paper's era).
pub const INITIAL_CWND: f64 = 10.0;

/// Floor for the congestion window the engine is ever asked to run with.
/// Enforced by the [`crate::window::Windowed`] adapter for every variant:
/// whatever a variant's internal state says (e.g. cwnd = 1 after an RTO),
/// the effective window stays at least this, so the flow always keeps
/// enough packets moving for SACK-based loss detection to function.
pub const MIN_CWND: f64 = 2.0;

/// Floor for the slow-start threshold after a loss.
pub const MIN_SSTHRESH: f64 = 2.0;

/// Standard slow-start growth: +1 packet per acked packet.
pub fn slow_start(cwnd: &mut f64, newly_acked: u32) {
    *cwnd += newly_acked as f64;
}

/// Reno congestion avoidance: +1/cwnd per acked packet.
pub fn reno_ca(cwnd: &mut f64, newly_acked: u32) {
    *cwnd += newly_acked as f64 / *cwnd;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cwnd = 10.0;
        // One window's worth of ACKs doubles cwnd.
        slow_start(&mut cwnd, 10);
        assert_eq!(cwnd, 20.0);
    }

    #[test]
    fn ca_grows_one_per_rtt() {
        let mut cwnd = 10.0;
        for _ in 0..10 {
            reno_ca(&mut cwnd, 1);
        }
        assert!((cwnd - 11.0).abs() < 0.05, "≈ +1 MSS per RTT: {cwnd}");
    }
}
