//! Test helpers for exercising [`WindowAlgo`] implementations directly.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::{SimDuration, SimTime};

/// A synthetic ACK with a 30 ms RTT and sane defaults.
pub fn ack(newly_acked: u32) -> CcAck {
    ack_at(newly_acked, SimTime::ZERO, SimDuration::from_millis(30))
}

/// A synthetic ACK at a given time/RTT.
pub fn ack_at(newly_acked: u32, now: SimTime, rtt: SimDuration) -> CcAck {
    CcAck {
        now,
        rtt,
        srtt: rtt,
        min_rtt: rtt,
        max_rtt: rtt,
        newly_acked,
        in_flight: 10,
        mss: 1500,
    }
}

/// Feed `n` ACKs of `per` packets each.
pub fn drive_acks(cc: &mut dyn WindowAlgo, n: u32, per: u32) {
    for _ in 0..n {
        cc.on_ack(&ack(per));
    }
}

/// Feed ACKs spread over time with a given RTT (for time-based algorithms
/// like CUBIC): `n` acks, one every `spacing`, each acking `per` packets.
pub fn drive_acks_timed(
    cc: &mut dyn WindowAlgo,
    n: u32,
    per: u32,
    start: SimTime,
    spacing: SimDuration,
    rtt: SimDuration,
) -> SimTime {
    let mut now = start;
    for _ in 0..n {
        cc.on_ack(&ack_at(per, now, rtt));
        now += spacing;
    }
    now
}
