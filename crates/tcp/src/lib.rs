//! # pcc-tcp — the TCP congestion-control baselines
//!
//! Faithful implementations of every TCP variant the paper evaluates
//! against. Each variant implements the crate-local [`WindowAlgo`]
//! sub-API (cwnd/ssthresh, the `tcp_congestion_ops` shape) and is adapted
//! onto the workspace-wide [`pcc_transport::CongestionControl`] trait by
//! [`window::Windowed`], so the same [`pcc_transport::CcSender`] engine —
//! and the real-UDP datapath — runs any of them:
//!
//! | Algorithm | Paper role |
//! |---|---|
//! | [`NewReno`] | textbook AIMD (Figs. 6, 8, 16) |
//! | [`Cubic`] | Linux default, high-BDP baseline (everywhere) |
//! | [`Illinois`] | loss+delay adaptive AIMD (Table 1, Figs. 6, 7, 11) |
//! | [`Hybla`] | satellite-optimized (Fig. 6) |
//! | [`Vegas`] | delay-based (Fig. 16) |
//! | [`Bic`] | binary increase (Fig. 16) |
//! | [`Westwood`] | bandwidth-estimate backoff (Fig. 16) |
//!
//! "TCP pacing" (Fig. 9) is any of these wrapped in
//! [`window::PacedWindowed`], which sets a `cwnd/SRTT` pacing rate *and*
//! the window — two effects on the unified API rather than an engine
//! config flag. Request it from [`by_name`] with a `-paced` suffix
//! (`"cubic-paced"`).
//!
//! Construction goes through [`by_name`] (typed [`UnknownAlgorithm`]
//! errors, never a panic) or the workspace-wide
//! [`pcc_transport::registry`] after [`register_algorithms`] has run.

mod bic;
mod common;
mod cubic;
mod hybla;
mod illinois;
mod newreno;
#[cfg(test)]
pub(crate) mod testutil;
mod vegas;
pub mod window;

mod westwood;

pub use bic::Bic;
pub use cubic::Cubic;
pub use hybla::Hybla;
pub use illinois::Illinois;
pub use newreno::NewReno;
pub use vegas::Vegas;
pub use westwood::Westwood;
pub use window::{CcAck, PacedWindowed, WindowAlgo, Windowed};

use pcc_simnet::time::SimDuration;
use pcc_transport::cc::CongestionControl;
use pcc_transport::registry::{self, CcParams, UnknownAlgorithm};
use pcc_transport::spec::{ParamKind, ParamSpec, Schema};

/// All baseline names, in the order used by reports.
pub const ALL_VARIANTS: &[&str] = &[
    "newreno", "cubic", "illinois", "hybla", "vegas", "bic", "westwood",
];

/// CUBIC's spec parameters (`cubic:beta=0.7,c=0.4,iw=32`): the RFC 8312
/// constants plus the initial window.
pub const CUBIC_SCHEMA: Schema = &[
    ParamSpec {
        key: "beta",
        kind: ParamKind::Float {
            min: 0.1,
            max: 0.95,
        },
        doc: "multiplicative-decrease factor β (RFC 8312: 0.7)",
    },
    ParamSpec {
        key: "c",
        kind: ParamKind::Float {
            min: 0.01,
            max: 10.0,
        },
        doc: "cubic scaling constant C (RFC 8312: 0.4)",
    },
    IW_PARAM,
];

/// Vegas' spec parameters (`vegas:alpha=2,beta=4,iw=10`): the backlog
/// band targets plus the initial window.
pub const VEGAS_SCHEMA: Schema = &[
    ParamSpec {
        key: "alpha",
        kind: ParamKind::Float {
            min: 0.1,
            max: 100.0,
        },
        doc: "lower backlog target α, packets (classic: 2)",
    },
    ParamSpec {
        key: "beta",
        kind: ParamKind::Float {
            min: 0.1,
            max: 100.0,
        },
        doc: "upper backlog target β, packets (classic: 4)",
    },
    IW_PARAM,
];

/// The initial-window key every baseline shares.
const IW_PARAM: ParamSpec = ParamSpec {
    key: "iw",
    kind: ParamKind::Int {
        min: 1,
        max: 10_000,
    },
    doc: "initial congestion window, packets (default IW10)",
};

/// New Reno's spec parameters (`newreno:iw=32`).
pub const NEWRENO_SCHEMA: Schema = &[IW_PARAM];

/// BIC's spec parameters (`bic:beta=0.7,iw=32`).
pub const BIC_SCHEMA: Schema = &[
    ParamSpec {
        key: "beta",
        kind: ParamKind::Float {
            min: 0.1,
            max: 0.95,
        },
        doc: "multiplicative-decrease factor β (Linux: 819/1024)",
    },
    IW_PARAM,
];

/// Hybla's spec parameters (`hybla:rtt0_ms=50,iw=32`).
pub const HYBLA_SCHEMA: Schema = &[
    ParamSpec {
        key: "rtt0_ms",
        kind: ParamKind::Float {
            min: 1.0,
            max: 1_000.0,
        },
        doc: "reference RTT growth is normalized to, ms (classic: 25)",
    },
    IW_PARAM,
];

/// Illinois' spec parameters (`illinois:alpha_max=5,beta_max=0.3,iw=32`).
pub const ILLINOIS_SCHEMA: Schema = &[
    ParamSpec {
        key: "alpha_max",
        kind: ParamKind::Float {
            min: 0.5,
            max: 100.0,
        },
        doc: "additive-increase ceiling α_max (Linux: 10)",
    },
    ParamSpec {
        key: "beta_max",
        kind: ParamKind::Float { min: 0.2, max: 1.0 },
        doc: "multiplicative-decrease ceiling β_max (Linux: 0.5)",
    },
    IW_PARAM,
];

/// Westwood's spec parameters (`westwood:gain=0.5,iw=32`).
pub const WESTWOOD_SCHEMA: Schema = &[
    ParamSpec {
        key: "gain",
        kind: ParamKind::Float {
            min: 0.01,
            max: 1.0,
        },
        doc: "bandwidth-filter new-sample weight (Linux: 1/8)",
    },
    IW_PARAM,
];

/// The spec schema a baseline (or its `-paced` variant) validates
/// against.
pub fn schema_for(variant: &str) -> Schema {
    match variant {
        "newreno" => NEWRENO_SCHEMA,
        "cubic" => CUBIC_SCHEMA,
        "illinois" => ILLINOIS_SCHEMA,
        "hybla" => HYBLA_SCHEMA,
        "vegas" => VEGAS_SCHEMA,
        "bic" => BIC_SCHEMA,
        "westwood" => WESTWOOD_SCHEMA,
        _ => &[],
    }
}

fn algo_by_name(name: &str, params: &CcParams) -> Option<Box<dyn WindowAlgo>> {
    let s = &params.spec;
    let iw = s.f64("iw").unwrap_or(common::INITIAL_CWND);
    Some(match name {
        "newreno" | "reno" => Box::new(NewReno::with_iw(iw)),
        "cubic" => Box::new(Cubic::with_params(
            s.f64("beta").unwrap_or(cubic::DEFAULT_BETA),
            s.f64("c").unwrap_or(cubic::DEFAULT_C),
            iw,
        )),
        "illinois" => Box::new(Illinois::with_params(
            s.f64("alpha_max").unwrap_or(illinois::ALPHA_MAX),
            s.f64("beta_max").unwrap_or(illinois::BETA_MAX),
            iw,
        )),
        "hybla" => Box::new(Hybla::with_params(
            s.f64("rtt0_ms")
                .map(|ms| SimDuration::from_secs_f64(ms / 1000.0))
                .unwrap_or(hybla::RTT0),
            iw,
        )),
        "vegas" => Box::new(Vegas::with_params(
            s.f64("alpha").unwrap_or(vegas::DEFAULT_ALPHA_PKTS),
            s.f64("beta").unwrap_or(vegas::DEFAULT_BETA_PKTS),
            iw,
        )),
        "bic" => Box::new(Bic::with_params(s.f64("beta").unwrap_or(bic::BETA), iw)),
        "westwood" => Box::new(Westwood::with_params(
            s.f64("gain").unwrap_or(westwood::DEFAULT_GAIN),
            iw,
        )),
        _ => return None,
    })
}

fn unknown(name: &str) -> UnknownAlgorithm {
    let mut known: Vec<String> = ALL_VARIANTS.iter().map(|v| v.to_string()).collect();
    known.extend(ALL_VARIANTS.iter().map(|v| format!("{v}-paced")));
    UnknownAlgorithm {
        name: name.to_string(),
        known,
    }
}

/// Construct a baseline by name (`"cubic"`, `"illinois"`, ...; append
/// `-paced` for the pacing variant), ready to plug into any engine.
/// Unknown names are a typed error.
pub fn by_name(name: &str) -> Result<Box<dyn CongestionControl>, UnknownAlgorithm> {
    by_name_with(name, &CcParams::default())
}

/// [`by_name`] with explicit construction parameters (MSS and RTT hint
/// seed the paced variants' initial pacing rate).
pub fn by_name_with(
    name: &str,
    params: &CcParams,
) -> Result<Box<dyn CongestionControl>, UnknownAlgorithm> {
    if let Some(plain) = name.strip_suffix("-paced") {
        let algo = algo_by_name(plain, params).ok_or_else(|| unknown(name))?;
        return Ok(Box::new(PacedWindowed::new(algo, params)));
    }
    let algo = algo_by_name(name, params).ok_or_else(|| unknown(name))?;
    Ok(Box::new(Windowed::new(algo)))
}

/// Register every TCP baseline (and its `-paced` variant) with the
/// workspace-wide [`pcc_transport::registry`], carrying each variant's
/// spec schema (see [`schema_for`] — `cubic:beta=0.7,iw=32` works on both
/// the plain and `-paced` names). Idempotent.
pub fn register_algorithms() {
    for name in ALL_VARIANTS {
        let plain = name.to_string();
        registry::register_with_schema(
            name,
            schema_for(name),
            Box::new(move |params| by_name_with(&plain, params).expect("variant list is static")),
        );
        let paced = format!("{name}-paced");
        let paced_inner = paced.clone();
        registry::register_with_schema(
            &paced,
            schema_for(name),
            Box::new(move |params| {
                by_name_with(&paced_inner, params).expect("variant list is static")
            }),
        );
    }
    registry::register_alias("reno", "newreno");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_covers_all_variants() {
        for name in ALL_VARIANTS {
            let cc = by_name(name).unwrap_or_else(|_| panic!("missing {name}"));
            assert_eq!(cc.name(), *name);
            let paced = by_name(&format!("{name}-paced"))
                .unwrap_or_else(|_| panic!("missing {name}-paced"));
            assert_eq!(paced.name(), *name);
        }
    }

    #[test]
    fn unknown_name_is_typed_error() {
        // (`bbr` exists in the workspace registry, but it is not a TCP
        // variant — this crate-local factory only knows the baselines.)
        let err = match by_name("tahoe") {
            Ok(_) => panic!("tahoe is not implemented"),
            Err(e) => e,
        };
        assert_eq!(err.name, "tahoe");
        assert!(err.known.contains(&"cubic".to_string()));
        assert!(err.to_string().contains("tahoe"));
    }

    #[test]
    fn registration_installs_all_names() {
        register_algorithms();
        let params = pcc_transport::registry::CcParams::default();
        for name in ALL_VARIANTS {
            assert!(
                pcc_transport::registry::by_name(name, &params).is_ok(),
                "{name} registered"
            );
            assert!(
                pcc_transport::registry::by_name(&format!("{name}-paced"), &params).is_ok(),
                "{name}-paced registered"
            );
        }
        let reno = pcc_transport::registry::by_name("reno", &params).expect("alias");
        assert_eq!(reno.name(), "newreno");
    }

    #[test]
    fn cubic_spec_tunes_iw_and_beta() {
        use pcc_simnet::rng::SimRng;
        use pcc_simnet::time::SimTime;
        use pcc_transport::cc::{Ctx, Effects, LossEvent, LossKind};

        register_algorithms();
        let params = pcc_transport::registry::CcParams::default();
        let mut cc =
            pcc_transport::registry::by_name("cubic:beta=0.5,iw=32", &params).expect("tuned cubic");
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let cwnd = fx.drain().cwnd;
        assert_eq!(cwnd, Some(32.0), "iw=32 reaches the engine");
        let seqs = [0u64];
        let loss = LossEvent {
            now: SimTime::ZERO,
            seqs: &seqs,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 8,
            mss: 1500,
        };
        cc.on_loss(&loss, &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let cwnd = fx.drain().cwnd;
        assert_eq!(cwnd, Some(16.0), "beta=0.5 halves instead of ×0.7");
    }

    #[test]
    fn every_variant_has_a_schema_with_iw() {
        // The ROADMAP PR 3 gap: all seven baselines now expose tunables.
        for name in ALL_VARIANTS {
            let schema = schema_for(name);
            assert!(
                schema.iter().any(|p| p.key == "iw"),
                "{name} exposes iw: {schema:?}"
            );
        }
    }

    #[test]
    fn remaining_tcp_specs_resolve_and_tune() {
        use pcc_simnet::rng::SimRng;
        use pcc_simnet::time::SimTime;
        use pcc_transport::cc::{Ctx, Effects};

        register_algorithms();
        let params = pcc_transport::registry::CcParams::default();
        // Each spec builds; iw is observable through the first cwnd effect.
        for spec in [
            "newreno:iw=32",
            "bic:beta=0.5,iw=32",
            "hybla:rtt0_ms=50,iw=32",
            "illinois:alpha_max=5,beta_max=0.3,iw=32",
            "westwood:gain=0.5,iw=32",
            "illinois-paced:alpha_max=5",
            "westwood-paced:gain=0.25",
        ] {
            let mut cc = pcc_transport::registry::by_name(spec, &params)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let mut rng = SimRng::new(1);
            let mut fx = Effects::default();
            cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
            let cwnd = fx.drain().cwnd;
            if spec.contains("iw=32") {
                assert_eq!(cwnd, Some(32.0), "{spec}: iw reaches the engine");
            }
        }
        // Out-of-range values are typed errors naming the key.
        for bad in [
            "newreno:iw=0",
            "bic:beta=0.99",
            "hybla:rtt0_ms=0.1",
            "illinois:beta_max=0.1",
            "westwood:gain=2",
        ] {
            let err = pcc_transport::registry::by_name(bad, &params)
                .err()
                .unwrap_or_else(|| panic!("{bad} must fail"));
            assert!(
                matches!(err, pcc_transport::registry::SpecError::InvalidParam(_)),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn vegas_spec_tunes_the_band_and_iw() {
        register_algorithms();
        let params = pcc_transport::registry::CcParams::default();
        assert!(
            pcc_transport::registry::by_name("vegas:alpha=3,beta=6,iw=4", &params).is_ok(),
            "tuned vegas constructs"
        );
        // Tuning applies on the paced wrapper too (same schema).
        assert!(pcc_transport::registry::by_name("vegas-paced:alpha=3,beta=6", &params).is_ok());
        // Out-of-range band is a typed error listing keys.
        let err = match pcc_transport::registry::by_name("vegas:alpha=1000", &params) {
            Ok(_) => panic!("must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("alpha=<"), "{err}");
    }
}
