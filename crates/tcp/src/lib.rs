//! # pcc-tcp — the TCP congestion-control baselines
//!
//! Faithful implementations of every TCP variant the paper evaluates
//! against, each as a [`pcc_transport::WindowCc`] plug-in for the shared
//! [`pcc_transport::WindowSender`] loss-recovery engine:
//!
//! | Algorithm | Paper role |
//! |---|---|
//! | [`NewReno`] | textbook AIMD (Figs. 6, 8, 16) |
//! | [`Cubic`] | Linux default, high-BDP baseline (everywhere) |
//! | [`Illinois`] | loss+delay adaptive AIMD (Table 1, Figs. 6, 7, 11) |
//! | [`Hybla`] | satellite-optimized (Fig. 6) |
//! | [`Vegas`] | delay-based (Fig. 16) |
//! | [`Bic`] | binary increase (Fig. 16) |
//! | [`Westwood`] | bandwidth-estimate backoff (Fig. 16) |
//!
//! "TCP pacing" (Fig. 9) is any of these run with
//! [`pcc_transport::WindowSenderConfig::pacing`] enabled.

#![warn(missing_docs)]

mod bic;
mod common;
mod cubic;
mod hybla;
mod illinois;
mod newreno;
#[cfg(test)]
pub(crate) mod testutil;
mod vegas;
mod westwood;

pub use bic::Bic;
pub use cubic::Cubic;
pub use hybla::Hybla;
pub use illinois::Illinois;
pub use newreno::NewReno;
pub use vegas::Vegas;
pub use westwood::Westwood;

use pcc_transport::window::WindowCc;

/// All baseline names, in the order used by reports.
pub const ALL_VARIANTS: &[&str] = &[
    "newreno", "cubic", "illinois", "hybla", "vegas", "bic", "westwood",
];

/// Construct a baseline by name (`"cubic"`, `"illinois"`, ...).
pub fn by_name(name: &str) -> Option<Box<dyn WindowCc>> {
    Some(match name {
        "newreno" | "reno" => Box::new(NewReno::new()),
        "cubic" => Box::new(Cubic::new()),
        "illinois" => Box::new(Illinois::new()),
        "hybla" => Box::new(Hybla::new()),
        "vegas" => Box::new(Vegas::new()),
        "bic" => Box::new(Bic::new()),
        "westwood" => Box::new(Westwood::new()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_covers_all_variants() {
        for name in ALL_VARIANTS {
            let cc = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(cc.name(), *name);
            assert!(cc.cwnd() >= 1.0);
        }
        assert!(by_name("bbr").is_none());
    }
}
