//! # pcc-tcp — the TCP congestion-control baselines
//!
//! Faithful implementations of every TCP variant the paper evaluates
//! against. Each variant implements the crate-local [`WindowAlgo`]
//! sub-API (cwnd/ssthresh, the `tcp_congestion_ops` shape) and is adapted
//! onto the workspace-wide [`pcc_transport::CongestionControl`] trait by
//! [`window::Windowed`], so the same [`pcc_transport::CcSender`] engine —
//! and the real-UDP datapath — runs any of them:
//!
//! | Algorithm | Paper role |
//! |---|---|
//! | [`NewReno`] | textbook AIMD (Figs. 6, 8, 16) |
//! | [`Cubic`] | Linux default, high-BDP baseline (everywhere) |
//! | [`Illinois`] | loss+delay adaptive AIMD (Table 1, Figs. 6, 7, 11) |
//! | [`Hybla`] | satellite-optimized (Fig. 6) |
//! | [`Vegas`] | delay-based (Fig. 16) |
//! | [`Bic`] | binary increase (Fig. 16) |
//! | [`Westwood`] | bandwidth-estimate backoff (Fig. 16) |
//!
//! "TCP pacing" (Fig. 9) is any of these wrapped in
//! [`window::PacedWindowed`], which sets a `cwnd/SRTT` pacing rate *and*
//! the window — two effects on the unified API rather than an engine
//! config flag. Request it from [`by_name`] with a `-paced` suffix
//! (`"cubic-paced"`).
//!
//! Construction goes through [`by_name`] (typed [`UnknownAlgorithm`]
//! errors, never a panic) or the workspace-wide
//! [`pcc_transport::registry`] after [`register_algorithms`] has run.

#![warn(missing_docs)]

mod bic;
mod common;
mod cubic;
mod hybla;
mod illinois;
mod newreno;
#[cfg(test)]
pub(crate) mod testutil;
mod vegas;
pub mod window;

mod westwood;

pub use bic::Bic;
pub use cubic::Cubic;
pub use hybla::Hybla;
pub use illinois::Illinois;
pub use newreno::NewReno;
pub use vegas::Vegas;
pub use westwood::Westwood;
pub use window::{CcAck, PacedWindowed, WindowAlgo, Windowed};

use pcc_transport::cc::CongestionControl;
use pcc_transport::registry::{self, CcParams, UnknownAlgorithm};

/// All baseline names, in the order used by reports.
pub const ALL_VARIANTS: &[&str] = &[
    "newreno", "cubic", "illinois", "hybla", "vegas", "bic", "westwood",
];

fn algo_by_name(name: &str) -> Option<Box<dyn WindowAlgo>> {
    Some(match name {
        "newreno" | "reno" => Box::new(NewReno::new()),
        "cubic" => Box::new(Cubic::new()),
        "illinois" => Box::new(Illinois::new()),
        "hybla" => Box::new(Hybla::new()),
        "vegas" => Box::new(Vegas::new()),
        "bic" => Box::new(Bic::new()),
        "westwood" => Box::new(Westwood::new()),
        _ => return None,
    })
}

fn unknown(name: &str) -> UnknownAlgorithm {
    let mut known: Vec<String> = ALL_VARIANTS.iter().map(|v| v.to_string()).collect();
    known.extend(ALL_VARIANTS.iter().map(|v| format!("{v}-paced")));
    UnknownAlgorithm {
        name: name.to_string(),
        known,
    }
}

/// Construct a baseline by name (`"cubic"`, `"illinois"`, ...; append
/// `-paced` for the pacing variant), ready to plug into any engine.
/// Unknown names are a typed error.
pub fn by_name(name: &str) -> Result<Box<dyn CongestionControl>, UnknownAlgorithm> {
    by_name_with(name, &CcParams::default())
}

/// [`by_name`] with explicit construction parameters (MSS and RTT hint
/// seed the paced variants' initial pacing rate).
pub fn by_name_with(
    name: &str,
    params: &CcParams,
) -> Result<Box<dyn CongestionControl>, UnknownAlgorithm> {
    if let Some(plain) = name.strip_suffix("-paced") {
        let algo = algo_by_name(plain).ok_or_else(|| unknown(name))?;
        return Ok(Box::new(PacedWindowed::new(algo, params)));
    }
    let algo = algo_by_name(name).ok_or_else(|| unknown(name))?;
    Ok(Box::new(Windowed::new(algo)))
}

/// Register every TCP baseline (and its `-paced` variant) with the
/// workspace-wide [`pcc_transport::registry`]. Idempotent.
pub fn register_algorithms() {
    for name in ALL_VARIANTS {
        let plain = name.to_string();
        registry::register(
            name,
            Box::new(move |params| by_name_with(&plain, params).expect("variant list is static")),
        );
        let paced = format!("{name}-paced");
        let paced_inner = paced.clone();
        registry::register(
            &paced,
            Box::new(move |params| {
                by_name_with(&paced_inner, params).expect("variant list is static")
            }),
        );
    }
    registry::register_alias("reno", "newreno");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_covers_all_variants() {
        for name in ALL_VARIANTS {
            let cc = by_name(name).unwrap_or_else(|_| panic!("missing {name}"));
            assert_eq!(cc.name(), *name);
            let paced = by_name(&format!("{name}-paced"))
                .unwrap_or_else(|_| panic!("missing {name}-paced"));
            assert_eq!(paced.name(), *name);
        }
    }

    #[test]
    fn unknown_name_is_typed_error() {
        // (`bbr` exists in the workspace registry, but it is not a TCP
        // variant — this crate-local factory only knows the baselines.)
        let err = match by_name("tahoe") {
            Ok(_) => panic!("tahoe is not implemented"),
            Err(e) => e,
        };
        assert_eq!(err.name, "tahoe");
        assert!(err.known.contains(&"cubic".to_string()));
        assert!(err.to_string().contains("tahoe"));
    }

    #[test]
    fn registration_installs_all_names() {
        register_algorithms();
        let params = pcc_transport::registry::CcParams::default();
        for name in ALL_VARIANTS {
            assert!(
                pcc_transport::registry::by_name(name, &params).is_ok(),
                "{name} registered"
            );
            assert!(
                pcc_transport::registry::by_name(&format!("{name}-paced"), &params).is_ok(),
                "{name}-paced registered"
            );
        }
        let reno = pcc_transport::registry::by_name("reno", &params).expect("alias");
        assert_eq!(reno.name(), "newreno");
    }
}
