//! The classic cwnd/ssthresh sub-API and its adapter onto the unified
//! [`CongestionControl`] trait.
//!
//! Every TCP baseline in this crate is, structurally, the same thing: a
//! little state machine that owns a congestion window and a slow-start
//! threshold, grows on ACKs, shrinks on loss events, and collapses on RTO.
//! [`WindowAlgo`] captures exactly that shape (it mirrors Linux's
//! `tcp_congestion_ops`), and [`Windowed`] adapts any such algorithm onto
//! the workspace-wide [`CongestionControl`] API by translating the unified
//! event vocabulary:
//!
//! * `on_ack` with `newly_acked > 0` outside recovery → [`WindowAlgo::on_ack`];
//! * `on_loss` with [`LossKind::Detected`] opening a new episode →
//!   [`WindowAlgo::on_loss_event`];
//! * `on_loss` with [`LossKind::Timeout`] → [`WindowAlgo::on_rto`];
//!
//! and pushing the resulting window through [`Ctx::set_cwnd`] after every
//! callback, floored at the crate-private `MIN_CWND` (2 packets) so the
//! engine can always keep loss detection alive.
//!
//! [`PacedWindowed`] additionally derives a pacing rate (`cwnd/SRTT`) and
//! sets *both* effects — the paper's Fig. 9 "TCP pacing" baseline as a
//! trivial composition rather than an engine config flag.

use pcc_simnet::time::{SimDuration, SimTime};
use pcc_transport::cc::{AckEvent, CongestionControl, Ctx, LossEvent, LossKind};
use pcc_transport::registry::CcParams;
use pcc_transport::report::MeasurementReport;

use crate::common::MIN_CWND;

/// Everything a classic window algorithm sees on each (growth-eligible)
/// ACK.
#[derive(Clone, Copy, Debug)]
pub struct CcAck {
    /// Current time.
    pub now: SimTime,
    /// Exact RTT of the acknowledged transmission.
    pub rtt: SimDuration,
    /// Smoothed RTT.
    pub srtt: SimDuration,
    /// Minimum RTT observed (propagation estimate).
    pub min_rtt: SimDuration,
    /// Maximum RTT observed.
    pub max_rtt: SimDuration,
    /// Packets newly acknowledged by this ACK.
    pub newly_acked: u32,
    /// Packets currently in flight.
    pub in_flight: u64,
    /// Packet size in bytes.
    pub mss: u32,
}

/// A classic window-based congestion-control algorithm (cwnd + ssthresh).
///
/// Implementations own their `cwnd`/`ssthresh`; the [`Windowed`] adapter
/// reads [`WindowAlgo::cwnd`] after each event and forwards it to the
/// engine. This is a convenience sub-API for this crate's TCP baselines —
/// engines and datapaths only ever see [`CongestionControl`].
pub trait WindowAlgo: Send {
    /// Algorithm name (for reports).
    fn name(&self) -> &'static str;

    /// Process an ACK (called only outside recovery episodes).
    fn on_ack(&mut self, ack: &CcAck);

    /// A loss event begins a recovery episode (fast retransmit).
    fn on_loss_event(&mut self, now: SimTime);

    /// Retransmission timeout fired.
    fn on_rto(&mut self, now: SimTime);

    /// Current congestion window in packets.
    fn cwnd(&self) -> f64;

    /// Current slow-start threshold in packets.
    fn ssthresh(&self) -> f64;

    /// True while in slow start.
    fn in_slow_start(&self) -> bool {
        self.cwnd() < self.ssthresh()
    }
}

/// Adapter: any [`WindowAlgo`] as a [`CongestionControl`].
pub struct Windowed {
    inner: Box<dyn WindowAlgo>,
}

impl Windowed {
    /// Wrap a window algorithm.
    pub fn new(inner: Box<dyn WindowAlgo>) -> Self {
        Windowed { inner }
    }

    /// The wrapped algorithm's effective window: its cwnd, floored at
    /// `MIN_CWND` (2 packets).
    pub fn effective_cwnd(&self) -> f64 {
        self.inner.cwnd().max(MIN_CWND)
    }

    fn push_cwnd(&self, ctx: &mut Ctx) {
        ctx.set_cwnd(self.effective_cwnd());
    }

    fn translate(ack: &AckEvent) -> CcAck {
        CcAck {
            now: ack.now,
            rtt: ack.rtt,
            srtt: ack.srtt,
            min_rtt: ack.min_rtt,
            max_rtt: ack.max_rtt,
            newly_acked: ack.newly_acked,
            in_flight: ack.in_flight,
            mss: ack.mss,
        }
    }
}

impl CongestionControl for Windowed {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        self.push_cwnd(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
        // Window growth only outside recovery episodes and only for ACKs
        // that advance the scoreboard (standard TCP behaviour).
        if ack.newly_acked > 0 && !ack.in_recovery {
            self.inner.on_ack(&Self::translate(ack));
        }
        self.push_cwnd(ctx);
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
        match loss.kind {
            LossKind::Detected => {
                if loss.new_episode {
                    self.inner.on_loss_event(loss.now);
                }
            }
            LossKind::Timeout => self.inner.on_rto(loss.now),
        }
        self.push_cwnd(ctx);
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut Ctx) {
        // Loss-event-driven semantics reconstructed from report deltas:
        // a timeout collapses, a fresh loss episode cuts once, and growth
        // is credited only for clean intervals (the engine flushes a
        // report the moment an episode opens, so a lossy interval never
        // smuggles its ACKs past the cut — same once-per-episode behaviour
        // as the per-ACK path).
        if rep.timeouts > 0 {
            self.inner.on_rto(rep.end);
        } else if rep.loss_events > 0 && rep.new_loss_episode {
            self.inner.on_loss_event(rep.end);
        } else if rep.acked_pkts > 0 && !rep.in_recovery {
            let ack = CcAck {
                now: rep.end,
                rtt: rep.mean_rtt(),
                srtt: rep.srtt,
                min_rtt: rep.min_rtt,
                max_rtt: rep.rtt_max.unwrap_or(rep.srtt),
                newly_acked: rep.acked_pkts.min(u32::MAX as u64) as u32,
                in_flight: rep.in_flight,
                mss: rep.mss,
            };
            self.inner.on_ack(&ack);
        }
        self.push_cwnd(ctx);
    }
}

/// Adapter: a [`WindowAlgo`] with pacing — sets the congestion window
/// *and* a `cwnd/SRTT` pacing rate, so the engine releases packets
/// smoothly instead of in ack-clocked TSO bursts (Fig. 9's "TCP Pacing").
pub struct PacedWindowed {
    inner: Windowed,
    mss: u32,
    last_srtt: SimDuration,
}

impl PacedWindowed {
    /// Wrap a window algorithm; `params` seeds the pre-sample pacing rate.
    pub fn new(inner: Box<dyn WindowAlgo>, params: &CcParams) -> Self {
        PacedWindowed {
            inner: Windowed::new(inner),
            mss: params.mss,
            last_srtt: params.rtt_hint,
        }
    }

    fn push_rate(&self, ctx: &mut Ctx) {
        let srtt = self.last_srtt.as_secs_f64().max(1e-6);
        ctx.set_rate(self.inner.effective_cwnd() * self.mss as f64 * 8.0 / srtt);
    }
}

impl CongestionControl for PacedWindowed {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        self.inner.on_start(ctx);
        self.push_rate(ctx);
    }

    fn on_ack(&mut self, ack: &AckEvent, ctx: &mut Ctx) {
        self.mss = ack.mss;
        self.last_srtt = ack.srtt;
        self.inner.on_ack(ack, ctx);
        self.push_rate(ctx);
    }

    fn on_loss(&mut self, loss: &LossEvent, ctx: &mut Ctx) {
        self.mss = loss.mss;
        self.inner.on_loss(loss, ctx);
        self.push_rate(ctx);
    }

    fn on_report(&mut self, rep: &MeasurementReport, ctx: &mut Ctx) {
        self.mss = rep.mss;
        self.last_srtt = rep.srtt;
        self.inner.on_report(rep, ctx);
        self.push_rate(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NewReno;
    use pcc_simnet::rng::SimRng;
    use pcc_transport::cc::Effects;

    fn ack_event(newly_acked: u32, in_recovery: bool) -> AckEvent {
        let rtt = SimDuration::from_millis(30);
        AckEvent {
            now: SimTime::ZERO,
            seq: 0,
            rtt,
            sampled: true,
            srtt: rtt,
            min_rtt: rtt,
            max_rtt: rtt,
            recv_at: SimTime::ZERO,
            probe_train: None,
            of_retx: false,
            cum_ack: 0,
            newly_acked,
            in_flight: 10,
            mss: 1500,
            in_recovery,
        }
    }

    fn drain_cwnd(fx: &mut Effects) -> Option<f64> {
        fx.drain().cwnd
    }

    #[test]
    fn adapter_grows_outside_recovery_only() {
        let mut cc = Windowed::new(Box::new(NewReno::new()));
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        assert_eq!(drain_cwnd(&mut fx), Some(10.0), "IW10");
        cc.on_ack(
            &ack_event(5, false),
            &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert_eq!(drain_cwnd(&mut fx), Some(15.0), "slow start grows");
        cc.on_ack(
            &ack_event(5, true),
            &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert_eq!(drain_cwnd(&mut fx), Some(15.0), "frozen in recovery");
    }

    #[test]
    fn adapter_maps_loss_kinds() {
        let mut cc = Windowed::new(Box::new(NewReno::new()));
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let _ = fx.drain();
        let seqs = [3u64, 4];
        let loss = LossEvent {
            now: SimTime::ZERO,
            seqs: &seqs,
            kind: LossKind::Detected,
            new_episode: true,
            in_flight: 8,
            mss: 1500,
        };
        cc.on_loss(&loss, &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        assert_eq!(drain_cwnd(&mut fx), Some(5.0), "halved on loss event");
        let repeat = LossEvent {
            new_episode: false,
            ..loss
        };
        cc.on_loss(&repeat, &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        assert_eq!(drain_cwnd(&mut fx), Some(5.0), "same episode: no re-cut");
    }

    #[test]
    fn min_cwnd_floor_enforced_after_rto() {
        let mut cc = Windowed::new(Box::new(NewReno::new()));
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let _ = fx.drain();
        let seqs = [0u64];
        let loss = LossEvent {
            now: SimTime::ZERO,
            seqs: &seqs,
            kind: LossKind::Timeout,
            new_episode: true,
            in_flight: 0,
            mss: 1500,
        };
        cc.on_loss(&loss, &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        // NewReno internally collapses to cwnd = 1 on RTO; the adapter
        // floors the window handed to the engine at MIN_CWND.
        let cwnd = drain_cwnd(&mut fx).expect("cwnd pushed");
        assert_eq!(cwnd, MIN_CWND, "floor enforced: {cwnd}");
    }

    #[test]
    fn paced_adapter_sets_both_effects() {
        let params = CcParams::default().with_rtt_hint(SimDuration::from_millis(100));
        let mut cc = PacedWindowed::new(Box::new(NewReno::new()), &params);
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let d = fx.drain();
        assert_eq!(d.cwnd, Some(10.0));
        // 10 pkts × 1500 B × 8 / 100 ms = 1.2 Mbps.
        let rate = d.rate.expect("pacing rate set");
        assert!((rate - 1.2e6).abs() < 1.0, "rate {rate}");
    }

    fn report(acked: u64, loss_events: u32, new_episode: bool, timeouts: u32) -> MeasurementReport {
        let rtt = SimDuration::from_millis(30);
        MeasurementReport {
            start: SimTime::ZERO,
            end: SimTime::from_millis(30),
            acked_pkts: acked,
            acked_bytes: acked * 1500,
            loss_events,
            new_loss_episode: new_episode,
            timeouts,
            srtt: rtt,
            min_rtt: rtt,
            mss: 1500,
            ..Default::default()
        }
    }

    #[test]
    fn batched_report_reconstructs_loss_event_semantics() {
        // The same NewReno through reports: a clean 5-ack interval grows
        // exactly like 5 per-ACK deliveries; a loss-episode report cuts
        // once; a timeout report collapses to the floor.
        let mut cc = Windowed::new(Box::new(NewReno::new()));
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        cc.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let _ = fx.drain();
        cc.on_report(
            &report(5, 0, false, 0),
            &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert_eq!(drain_cwnd(&mut fx), Some(15.0), "slow start via report");
        cc.on_report(
            &report(3, 1, true, 0),
            &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert_eq!(drain_cwnd(&mut fx), Some(7.5), "halved on episode report");
        cc.on_report(
            &report(0, 4, true, 1),
            &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert_eq!(
            drain_cwnd(&mut fx),
            Some(MIN_CWND),
            "timeout report collapses"
        );
    }

    #[test]
    fn batched_growth_matches_per_ack_totals() {
        // 20 packets acked in one clean interval must land on the same
        // window as 4 per-ACK events of 5 — lossless aggregation end to
        // end for ack-counting algorithms.
        let mut per_ack = Windowed::new(Box::new(NewReno::new()));
        let mut batched = Windowed::new(Box::new(NewReno::new()));
        let mut rng = SimRng::new(1);
        let mut fx = Effects::default();
        per_ack.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        batched.on_start(&mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx));
        let _ = fx.drain();
        for _ in 0..4 {
            per_ack.on_ack(
                &ack_event(5, false),
                &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
            );
        }
        let per_ack_cwnd = drain_cwnd(&mut fx).expect("cwnd");
        batched.on_report(
            &report(20, 0, false, 0),
            &mut Ctx::new(SimTime::ZERO, &mut rng, &mut fx),
        );
        assert_eq!(drain_cwnd(&mut fx), Some(per_ack_cwnd));
    }
}
