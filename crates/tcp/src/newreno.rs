//! TCP New Reno (RFC 5681/6582): the textbook AIMD baseline.
//!
//! Slow start doubles per RTT; congestion avoidance adds one packet per
//! RTT; a loss event halves the window. This is the paper's canonical
//! example of a hardwired event→response mapping: "a packet loss halves the
//! congestion window size" regardless of why the loss happened.

use crate::window::{CcAck, WindowAlgo};
use pcc_simnet::time::SimTime;

use crate::common::{reno_ca, slow_start, INITIAL_CWND, MIN_SSTHRESH};

/// New Reno congestion control.
#[derive(Clone, Debug)]
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
}

impl NewReno {
    /// New instance with IW10.
    pub fn new() -> Self {
        Self::with_iw(INITIAL_CWND)
    }

    /// New instance with an explicit initial window
    /// (`newreno:iw=32`).
    pub fn with_iw(iw: f64) -> Self {
        NewReno {
            cwnd: iw,
            ssthresh: f64::MAX,
        }
    }
}

impl Default for NewReno {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowAlgo for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(&mut self, ack: &CcAck) {
        if self.cwnd < self.ssthresh {
            slow_start(&mut self.cwnd, ack.newly_acked);
        } else {
            reno_ca(&mut self.cwnd, ack.newly_acked);
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ack, drive_acks};

    #[test]
    fn slow_start_then_ca() {
        let mut cc = NewReno::new();
        assert!(cc.in_slow_start());
        drive_acks(&mut cc, 10, 1);
        assert_eq!(cc.cwnd(), 20.0, "doubled in slow start");
        cc.on_loss_event(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 10.0, "halved");
        assert_eq!(cc.ssthresh(), 10.0);
        assert!(!cc.in_slow_start());
        cc.on_ack(&ack(1));
        assert!((cc.cwnd() - 10.1).abs() < 1e-9, "CA adds 1/cwnd");
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut cc = NewReno::new();
        drive_acks(&mut cc, 30, 1);
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 1.0);
        assert_eq!(cc.ssthresh(), 20.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn repeated_losses_floor_at_min() {
        let mut cc = NewReno::new();
        for _ in 0..20 {
            cc.on_loss_event(SimTime::ZERO);
        }
        assert_eq!(cc.cwnd(), MIN_SSTHRESH);
    }
}
